"""FIFO disk model: per-request seek overhead plus streaming bandwidth.

The paper's Read filters stream declustered chunk files off local SCSI/IDE
disks.  A single-queue model (request service time = seek + bytes/bandwidth,
served in arrival order) captures what matters for the experiments: retrieval
cost proportional to bytes stored per disk, and serialization when multiple
filter copies read from the same spindle.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event

__all__ = ["Disk"]


class Disk:
    """A single disk with FIFO request scheduling.

    Parameters
    ----------
    env:
        Simulation environment.
    bandwidth:
        Sustained transfer rate in bytes/second.
    seek_time:
        Fixed per-request positioning overhead in seconds.
    name:
        Label for diagnostics.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float,
        seek_time: float = 0.0,
        name: str = "disk",
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        if seek_time < 0:
            raise ValueError(f"seek_time must be >= 0, got {seek_time}")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.seek_time = float(seek_time)
        self.name = name
        self._free_at = env.now
        # Statistics.
        self.bytes_read = 0
        self.requests = 0
        self.busy_time = 0.0

    def read(self, nbytes: int, sequential: bool = False) -> Event:
        """Issue a read of ``nbytes``; the event fires when data is in memory.

        Requests are served strictly in issue order (FIFO).  With
        ``sequential=True`` the positioning overhead is skipped — use it for
        reads that continue immediately after the previous one (consecutive
        chunks of the same declustered file).
        """
        if nbytes < 0:
            raise SimulationError(f"negative read size: {nbytes}")
        now = self.env.now
        service = (0.0 if sequential else self.seek_time) + nbytes / self.bandwidth
        start = max(now, self._free_at)
        self._free_at = start + service
        self.bytes_read += nbytes
        self.requests += 1
        self.busy_time += service
        return self.env.timeout(self._free_at - now)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall time the disk has been busy since ``since``."""
        elapsed = self.env.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
