"""Simulated host: a named machine with CPU cores, disks, and a NIC.

A :class:`Host` bundles the per-machine resources and offers the two
operations filter copies need: run CPU work (:meth:`compute`) and read bytes
from a local disk (:meth:`read_disk`).  Network transfers are issued through
the owning :class:`repro.sim.cluster.Cluster`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.cpu import ProcessorSharingCPU
from repro.sim.disk import Disk
from repro.sim.kernel import Environment, Event

__all__ = ["Host"]


class Host:
    """One machine in the simulated testbed.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Globally unique host name (e.g. ``"rogue3"``).
    cores / speed:
        CPU configuration; ``speed`` is relative to the reference host.
    disks:
        List of ``(bandwidth_bytes_per_s, seek_seconds)`` tuples.
    memory:
        Bytes of RAM (informational; used by admission sanity checks).
    cluster_name:
        Name of the cluster this host belongs to (e.g. ``"rogue"``).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int,
        speed: float = 1.0,
        disks: list[tuple[float, float]] | None = None,
        memory: int = 1 << 30,
        cluster_name: str = "default",
    ):
        self.env = env
        self.name = name
        self.cluster_name = cluster_name
        self.memory = memory
        self.cpu = ProcessorSharingCPU(env, cores=cores, speed=speed, name=f"{name}.cpu")
        self.disks: list[Disk] = [
            Disk(env, bandwidth=bw, seek_time=seek, name=f"{name}.disk{i}")
            for i, (bw, seek) in enumerate(disks or [])
        ]

    @property
    def cores(self) -> int:
        """Number of CPU cores."""
        return self.cpu.cores

    @property
    def speed(self) -> float:
        """Relative per-core speed versus the reference host."""
        return self.cpu.speed

    def compute(self, work: float) -> Event:
        """Execute ``work`` reference core-seconds on this host's CPU."""
        return self.cpu.execute(work)

    def read_disk(
        self, nbytes: int, disk_index: int = 0, sequential: bool = False
    ) -> Event:
        """Read ``nbytes`` from local disk ``disk_index``.

        ``sequential=True`` skips the seek (continuation of the previous
        read on that disk).
        """
        if not self.disks:
            raise ConfigurationError(f"host {self.name!r} has no disks")
        if not 0 <= disk_index < len(self.disks):
            raise ConfigurationError(
                f"host {self.name!r} has no disk {disk_index} "
                f"(has {len(self.disks)})"
            )
        return self.disks[disk_index].read(nbytes, sequential=sequential)

    def set_background_load(self, jobs: int) -> None:
        """Run ``jobs`` equal-priority CPU-bound background jobs on this host."""
        self.cpu.set_background_load(jobs)

    def __repr__(self) -> str:
        return (
            f"<Host {self.name} {self.cores}x{self.speed:.2f} "
            f"{len(self.disks)} disk(s)>"
        )
