"""Flow-level network model with max-min fair bandwidth sharing.

Hosts are attached to switches by full-duplex access links (one tx, one rx
link each, at NIC speed); switches are joined by trunk links.  A transfer is
a *flow* across the links on its route.  Whenever a flow starts or finishes,
bandwidth is re-allocated among all active flows with the classic max-min
water-filling algorithm, so a 100 Mbit access link shared by four filter
streams behaves like the real Rogue cluster's Fast Ethernet.

Per-message overhead (latency plus a fixed per-message cost) models what TCP
costs for small messages -- this is what makes Demand-Driven acknowledgment
traffic expensive on slow links (paper Section 4.4).
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import Environment, Event

__all__ = ["Link", "Network"]

_EPS_BYTES = 1e-6


class Link:
    """A unidirectional link with a fixed capacity in bytes/second."""

    __slots__ = ("name", "capacity", "bytes_carried", "messages")

    def __init__(self, name: str, capacity: float):
        if capacity <= 0:
            raise ValueError(f"link capacity must be > 0, got {capacity}")
        self.name = name
        self.capacity = float(capacity)
        self.bytes_carried = 0
        self.messages = 0

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.capacity / 1e6:.1f} MB/s>"


class _Flow:
    __slots__ = ("links", "remaining", "rate", "event", "nbytes")

    def __init__(self, links: tuple[Link, ...], nbytes: float, event: Event):
        self.links = links
        self.remaining = nbytes
        self.nbytes = nbytes
        self.rate = 0.0
        self.event = event


class Network:
    """A collection of links, routes, and in-flight flows.

    Routes are registered explicitly with :meth:`set_route`; higher layers
    (:mod:`repro.sim.cluster`) compute them from topology.  Transfers between
    a host and itself bypass the network (loopback) and take only
    ``local_latency`` plus ``nbytes / local_bandwidth``.
    """

    def __init__(
        self,
        env: Environment,
        local_bandwidth: float = 800e6,
        local_latency: float = 5e-6,
    ):
        self.env = env
        self.local_bandwidth = local_bandwidth
        self.local_latency = local_latency
        self.links: dict[str, Link] = {}
        # (src, dst) -> (links tuple, latency seconds, per-message overhead s)
        self._routes: dict[tuple[str, str], tuple[tuple[Link, ...], float, float]] = {}
        self._flows: list[_Flow] = []
        self._last = env.now
        self._epoch = 0
        # Statistics.
        self.transfers_started = 0
        self.transfers_completed = 0
        self.bytes_delivered = 0.0

    # -- topology ------------------------------------------------------------
    def add_link(self, name: str, capacity: float) -> Link:
        """Create and register a link; names must be unique."""
        if name in self.links:
            raise ConfigurationError(f"duplicate link name {name!r}")
        link = Link(name, capacity)
        self.links[name] = link
        return link

    def set_route(
        self,
        src: str,
        dst: str,
        links: list[Link],
        latency: float,
        message_overhead: float = 0.0,
    ) -> None:
        """Register the link path and fixed costs for ``src`` -> ``dst``."""
        if latency < 0 or message_overhead < 0:
            raise ConfigurationError("latency/message_overhead must be >= 0")
        self._routes[(src, dst)] = (tuple(links), latency, message_overhead)

    def route(self, src: str, dst: str) -> tuple[tuple[Link, ...], float, float]:
        """Look up the registered route for ``src`` -> ``dst``."""
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise ConfigurationError(f"no route from {src!r} to {dst!r}") from None

    # -- transfers -------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Move ``nbytes`` from host ``src`` to host ``dst``.

        Returns an event firing when the last byte has arrived.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size: {nbytes}")
        ev = Event(self.env)
        self.transfers_started += 1
        if src == dst:
            delay = self.local_latency + nbytes / self.local_bandwidth
            done = self.env.timeout(delay)
            done.callbacks.append(lambda _e: self._finish_local(ev, nbytes))
            return ev

        links, latency, overhead = self.route(src, dst)
        for link in links:
            link.bytes_carried += nbytes
            link.messages += 1
        fixed = latency + overhead
        if nbytes == 0:
            done = self.env.timeout(fixed)
            done.callbacks.append(lambda _e: self._finish_local(ev, 0))
            return ev
        inner = Event(self.env)
        flow = _Flow(links, float(nbytes), inner)
        self._settle()
        self._flows.append(flow)
        self._update()

        def _then(_e: Event) -> None:
            tail = self.env.timeout(fixed)
            tail.callbacks.append(lambda _t: self._finish_remote(ev, nbytes))

        inner.callbacks.append(_then)
        return ev

    def _finish_local(self, ev: Event, nbytes: float) -> None:
        self.transfers_completed += 1
        self.bytes_delivered += nbytes
        ev.succeed(None)

    def _finish_remote(self, ev: Event, nbytes: float) -> None:
        self.transfers_completed += 1
        self.bytes_delivered += nbytes
        ev.succeed(None)

    @property
    def active_flows(self) -> int:
        """Number of flows currently moving bytes."""
        return len(self._flows)

    def current_rates(self) -> list[tuple[tuple[str, ...], float]]:
        """(link names, rate) of every active flow — for tests/diagnostics."""
        return [
            (tuple(link.name for link in flow.links), flow.rate)
            for flow in self._flows
        ]

    # -- max-min fair sharing ---------------------------------------------------
    def _settle(self) -> None:
        now = self.env.now
        dt = now - self._last
        if dt > 0:
            for flow in self._flows:
                flow.remaining -= dt * flow.rate
        self._last = now

    def _update(self) -> None:
        """Complete drained flows, re-share bandwidth, schedule next wake."""
        finished = [f for f in self._flows if f.remaining <= _EPS_BYTES]
        if finished:
            self._flows = [f for f in self._flows if f.remaining > _EPS_BYTES]
            for flow in finished:
                flow.event.succeed(None)
        self._maxmin()
        self._epoch += 1
        if not self._flows:
            return
        horizon = min(f.remaining / f.rate for f in self._flows)
        epoch = self._epoch
        timer = self.env.timeout(max(horizon, 0.0))
        timer.callbacks.append(lambda _e: self._tick(epoch))

    def _tick(self, epoch: int) -> None:
        if epoch != self._epoch:
            return
        self._settle()
        self._update()

    def _maxmin(self) -> None:
        """Water-filling max-min fair allocation over the active flows."""
        flows = self._flows
        if not flows:
            return
        unfrozen: set[int] = set(range(len(flows)))
        link_flows: dict[Link, set[int]] = {}
        for i, flow in enumerate(flows):
            for link in flow.links:
                link_flows.setdefault(link, set()).add(i)
        cap_left: dict[Link, float] = {ln: ln.capacity for ln in link_flows}

        while unfrozen:
            # Find the tightest link among those carrying unfrozen flows.
            best_link: Link | None = None
            best_share = float("inf")
            for link, members in link_flows.items():
                live = members & unfrozen
                if not live:
                    continue
                share = cap_left[link] / len(live)
                if share < best_share:
                    best_share = share
                    best_link = link
            if best_link is None:  # pragma: no cover - defensive
                break
            for i in list(link_flows[best_link] & unfrozen):
                flows[i].rate = best_share
                unfrozen.discard(i)
                for link in flows[i].links:
                    cap_left[link] -= best_share
                    # Numerical guard against tiny negatives.
                    if cap_left[link] < 0:
                        cap_left[link] = 0.0
