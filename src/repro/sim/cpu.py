"""Processor-sharing multi-core CPU model.

The paper's heterogeneity experiments hinge on equal-priority background
jobs competing with filter work for CPU time.  This module models a host CPU
as an egalitarian processor-sharing server: with ``n`` runnable tasks on
``c`` cores, every task advances at ``speed * min(1, c / n)`` reference
seconds per second.  That is exactly the long-run behaviour of a fair OS
scheduler with equal-priority CPU-bound tasks, without simulating individual
quanta.

Work is expressed in *reference core-seconds*: one unit equals one second of
exclusive execution on a reference host (``speed == 1.0``, the paper's Rogue
nodes).  Faster/slower hosts scale via ``speed``.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.kernel import Environment, Event

__all__ = ["ProcessorSharingCPU"]

# Remaining work at or below this is treated as complete (absolute, in
# reference core-seconds; task sizes in this library are >= microseconds).
_EPS = 1e-9


class _Task:
    __slots__ = ("remaining", "total", "event")

    def __init__(self, remaining: float, event: Event):
        self.remaining = remaining
        self.total = remaining
        self.event = event


class ProcessorSharingCPU:
    """A multi-core CPU shared fairly among runnable tasks.

    Parameters
    ----------
    env:
        Simulation environment.
    cores:
        Number of cores.
    speed:
        Relative speed of one core versus the reference host (1.0 = Rogue
        PIII-650 in the paper's testbed).
    name:
        Label for diagnostics.
    """

    def __init__(
        self,
        env: Environment,
        cores: int,
        speed: float = 1.0,
        name: str = "cpu",
    ):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if speed <= 0:
            raise ValueError(f"speed must be > 0, got {speed}")
        self.env = env
        self.cores = cores
        self.speed = speed
        self.name = name
        self._tasks: list[_Task] = []
        self._background = 0
        self._last = env.now
        self._task_rate = 0.0  # rate per task at the moment of last settle
        self._epoch = 0
        # Statistics.
        self.work_completed = 0.0  # reference core-seconds of real tasks
        self.tasks_completed = 0
        self.busy_integral = 0.0  # core-seconds occupied (incl. background)

    # -- public API --------------------------------------------------------
    @property
    def background_jobs(self) -> int:
        """Number of phantom equal-priority CPU-bound background jobs."""
        return self._background

    @property
    def active_tasks(self) -> int:
        """Number of in-flight real tasks (excluding background jobs)."""
        return len(self._tasks)

    def execute(self, work: float) -> Event:
        """Run ``work`` reference core-seconds; event fires at completion."""
        if work < 0:
            raise SimulationError(f"negative work: {work}")
        ev = Event(self.env)
        if work == 0:
            ev.succeed(None)
            return ev
        self._settle()
        self._tasks.append(_Task(float(work), ev))
        self._update()
        return ev

    def set_background_load(self, jobs: int) -> None:
        """Set the number of competing equal-priority background jobs."""
        if jobs < 0:
            raise ValueError(f"background jobs must be >= 0, got {jobs}")
        if jobs == self._background:
            return
        self._settle()
        self._background = jobs
        self._update()

    def current_task_rate(self) -> float:
        """Reference-seconds-per-second each runnable task currently gets."""
        return self._rate()

    # -- internals -----------------------------------------------------------
    def _rate(self) -> float:
        n = len(self._tasks) + self._background
        if n == 0:
            return 0.0
        return self.speed * min(1.0, self.cores / n)

    def _settle(self) -> None:
        """Account for progress since the last task-set change."""
        now = self.env.now
        dt = now - self._last
        if dt > 0:
            n = len(self._tasks) + self._background
            if self._task_rate > 0:
                for task in self._tasks:
                    task.remaining -= dt * self._task_rate
            if n:
                self.busy_integral += dt * min(self.cores, n)
        self._last = now

    def _update(self) -> None:
        """Complete finished tasks, recompute rates, schedule next wake."""
        finished = [t for t in self._tasks if t.remaining <= _EPS]
        if finished:
            self._tasks = [t for t in self._tasks if t.remaining > _EPS]
            for task in finished:
                self.tasks_completed += 1
                self.work_completed += task.total
                task.event.succeed(None)
            # Completions changed the share; recompute before scheduling.
        self._task_rate = self._rate()
        self._epoch += 1
        if not self._tasks:
            return
        horizon = min(t.remaining for t in self._tasks) / self._task_rate
        epoch = self._epoch
        timer = self.env.timeout(max(horizon, 0.0))
        timer.callbacks.append(lambda _ev: self._tick(epoch))

    def _tick(self, epoch: int) -> None:
        if epoch != self._epoch:
            return  # a newer task-set change superseded this wake-up
        before = len(self._tasks)
        self._settle()
        done = sum(1 for t in self._tasks if t.remaining <= _EPS)
        self._update()
        if before and done == 0:  # pragma: no cover - numeric guard
            raise SimulationError(f"{self.name}: timer fired but no task finished")
