"""Bounded FIFO queues for simulated producer/consumer communication.

:class:`Store` is the simulated analogue of a ``queue.Queue``: producers
block (in simulated time) when the store is full, consumers block when it is
empty.  It also supports *closing*: once closed and drained, pending and
future ``get`` requests fail with :class:`repro.errors.StreamClosedError`,
which is how end-of-work propagates through simulated filter pipelines.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import StreamClosedError
from repro.sim.kernel import Environment, Event

__all__ = ["Store"]


class Store:
    """A bounded FIFO queue in simulated time.

    Parameters
    ----------
    env:
        The simulation environment.
    capacity:
        Maximum number of queued items; ``None`` means unbounded.
    name:
        Optional label used in error messages.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int | None = None,
        name: str = "store",
    ):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()
        self._closed = False
        # Lifetime statistics.
        self.total_put = 0
        self.total_got = 0
        self.peak_occupancy = 0

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called."""
        return self._closed

    @property
    def exhausted(self) -> bool:
        """True if the store is closed and fully drained."""
        return self._closed and not self._items

    # -- operations ----------------------------------------------------------
    def put(self, item: Any) -> Event:
        """Enqueue ``item``; returns an event that fires once accepted."""
        ev = Event(self.env)
        if self._closed:
            ev.fail(StreamClosedError(f"put() on closed store {self.name!r}"))
            return ev
        if self._getters:
            # Hand the item directly to the oldest waiting consumer.
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            getter.succeed(item)
            ev.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.total_put += 1
            self.peak_occupancy = max(self.peak_occupancy, len(self._items))
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Dequeue one item; returns an event carrying the item.

        Fails with :class:`StreamClosedError` if the store is (or becomes)
        exhausted before an item is available.
        """
        ev = Event(self.env)
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            self._admit_putter()
            ev.succeed(item)
        elif self._closed:
            ev.fail(StreamClosedError(f"get() on exhausted store {self.name!r}"))
        else:
            self._getters.append(ev)
        return ev

    def close(self) -> None:
        """Close the store: no further puts; waiting getters fail once empty.

        Items already queued remain retrievable.  Blocked putters fail
        immediately (their items are dropped) -- in the filter runtime,
        closing only happens after all producers have finished, so this path
        indicates a protocol bug and the failure makes it loud.
        """
        if self._closed:
            return
        self._closed = True
        while self._putters:
            ev, _item = self._putters.popleft()
            ev.fail(StreamClosedError(f"store {self.name!r} closed during put"))
        if not self._items:
            while self._getters:
                self._getters.popleft().fail(
                    StreamClosedError(f"store {self.name!r} exhausted")
                )

    # -- internal ------------------------------------------------------------
    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            ev, item = self._putters.popleft()
            self._items.append(item)
            self.total_put += 1
            self.peak_occupancy = max(self.peak_occupancy, len(self._items))
            ev.succeed(None)
        if self._closed and not self._items:
            while self._getters:
                self._getters.popleft().fail(
                    StreamClosedError(f"store {self.name!r} exhausted")
                )
