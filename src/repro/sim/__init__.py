"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed: a deterministic DES
kernel (:mod:`repro.sim.kernel`), processor-sharing CPUs, FIFO disks,
max-min fair network links, and a cluster topology builder that recreates
the UMD Red/Blue/Rogue/Deathstar installation.
"""

from repro.sim.background import LoadPhase, apply_background_load, scheduled_background_load
from repro.sim.cluster import (
    FAST_ETHERNET,
    GIGABIT,
    Cluster,
    LinkSpec,
    homogeneous_cluster,
    umd_testbed,
)
from repro.sim.cpu import ProcessorSharingCPU
from repro.sim.disk import Disk
from repro.sim.host import Host
from repro.sim.kernel import AllOf, AnyOf, Environment, Event, Process, Timeout
from repro.sim.network import Link, Network
from repro.sim.store import Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Cluster",
    "Disk",
    "Environment",
    "Event",
    "FAST_ETHERNET",
    "GIGABIT",
    "Host",
    "Link",
    "LinkSpec",
    "LoadPhase",
    "Network",
    "Process",
    "ProcessorSharingCPU",
    "Store",
    "Timeout",
    "apply_background_load",
    "homogeneous_cluster",
    "scheduled_background_load",
    "umd_testbed",
]
