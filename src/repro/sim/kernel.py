"""Discrete-event simulation kernel.

A minimal, deterministic process-based DES in the style of SimPy, tailored to
the needs of the cluster substrate: coroutine processes, one-shot events,
timeouts, and composite conditions.  The kernel is the foundation every
simulated resource (CPU, disk, network link, stream queue) is built on.

Determinism: events scheduled for the same simulated time fire in FIFO order
of scheduling (a monotonically increasing sequence number breaks ties), so a
simulation given the same inputs always produces the same trace.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator, Iterable
from typing import Any

from repro.errors import Interrupt, SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "PENDING",
]


class _PendingType:
    """Sentinel for an event value that has not been decided yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _PendingType()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* when :meth:`succeed` or
    :meth:`fail` is called, which schedules its callbacks to run at the
    current simulation time.  Processes wait on events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool | None = None
        self._scheduled = False
        self._defused = False

    # -- state predicates ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (success or failure)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have all run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A process waiting on the event will have the exception raised at its
        yield point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """A coroutine driven by the events it yields.

    The process itself is an event that triggers with the generator's return
    value when it finishes (or fails with the escaping exception).
    """

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError(f"expected a generator, got {generator!r}")
        super().__init__(env)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume the process at the current time.
        boot = Event(env)
        boot._ok = True
        boot._value = None
        boot.callbacks.append(self._resume)
        env._schedule(boot)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`repro.errors.Interrupt` into the process.

        The process may catch the interrupt and continue; the event it was
        waiting on remains pending and can be re-awaited.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        kick = Event(self.env)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.callbacks.append(self._resume)
        kick._defused = True
        self.env._schedule(kick, priority=0)

    # -- internal --------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self._waiting_on = None
        event: Any = trigger
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    # Mark the failure as handled so the env does not crash.
                    setattr(event, "_defused", True)
                    exc = event._value
                    target = self._generator.throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - process body failed
                self.fail(exc)
                return

            if not isinstance(target, Event):
                err = SimulationError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                try:
                    self._generator.throw(err)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as exc:  # noqa: BLE001
                    self.fail(exc)
                return
            if target.callbacks is None:
                # Already processed: continue immediately with its value.
                event = target
                continue
            self._waiting_on = target
            target.callbacks.append(self._resume)
            return


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different envs")
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev.triggered}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every constituent event has succeeded.

    Fails as soon as any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            setattr(event, "_defused", True)
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any constituent event succeeds (or fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            setattr(event, "_defused", True)
            self.fail(event._value)
            return
        self.succeed(self._collect())


class Environment:
    """The simulation world: clock plus event queue.

    Typical use::

        env = Environment()

        def producer(env):
            yield env.timeout(1.0)
            return "done"

        proc = env.process(producer(env))
        env.run()
        assert env.now == 1.0
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Spawn a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: any of ``events``."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        self._seq += 1

    def _step(self) -> None:
        when, _prio, _seq, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by Timeout ctor
            raise SimulationError("time went backwards")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if event._ok is False and not getattr(event, "_defused", False):
            # An event failed and nothing was listening: surface the error.
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a time
        (run up to that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        stop_at: float | None = None
        stop_event: Event | None = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"run(until={stop_at}) is in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            if stop_at is not None and self.peek() > stop_at:
                self._now = stop_at
                return None
            self._step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError("run() ran out of events before `until` fired")
            if not stop_event._ok:
                setattr(stop_event, "_defused", True)
                raise stop_event._value
            return stop_event._value
        if stop_at is not None and stop_at > self._now:
            self._now = stop_at
        return None
