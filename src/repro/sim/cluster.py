"""Cluster topology builder and the UMD testbed replica.

A :class:`Cluster` is the whole simulated installation: hosts attached to
switches by full-duplex access links, switches joined by trunks, and a
routing table computed over the switch graph.  :func:`umd_testbed` rebuilds
the heterogeneous collection from the paper (Section 4): the Red, Blue,
Rogue and Deathstar clusters with their CPU generations, disk subsystems and
Gigabit/Fast-Ethernet interconnects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ConfigurationError
from repro.sim.host import Host
from repro.sim.kernel import Environment, Event
from repro.sim.network import Network

__all__ = ["LinkSpec", "Cluster", "umd_testbed", "homogeneous_cluster"]

# Effective (application-level) bandwidths, bytes/second.
GIGABIT = 100e6
FAST_ETHERNET = 11.5e6

# Per-hop one-way latencies and fixed per-message costs, seconds.
GIGABIT_LATENCY = 60e-6
FAST_ETHERNET_LATENCY = 120e-6
GIGABIT_MSG_OVERHEAD = 25e-6
FAST_ETHERNET_MSG_OVERHEAD = 90e-6

# Disk profiles: (bandwidth bytes/s, seek seconds).
SCSI_DISK = (35e6, 4e-3)
IDE_DISK = (30e6, 6e-3)

# Per-core relative speeds (reference = Rogue's PIII 650 MHz).
PII_450 = 450.0 / 650.0
PIII_550 = 550.0 / 650.0
PIII_650 = 1.0


@dataclass
class LinkSpec:
    """Bandwidth/latency/overhead bundle for one hop."""

    bandwidth: float
    latency: float
    message_overhead: float = 0.0


@dataclass
class _Switch:
    name: str
    hosts: list[str] = field(default_factory=list)


class Cluster:
    """The simulated installation: hosts, switches, and the network.

    Build by calling :meth:`add_switch`, :meth:`add_host` and
    :meth:`connect_switches`, then :meth:`finalize` to compute routes.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.network = Network(env)
        self.hosts: dict[str, Host] = {}
        self._switches: dict[str, _Switch] = {}
        self._switch_graph = nx.Graph()
        self._host_access: dict[str, LinkSpec] = {}
        self._host_switch: dict[str, str] = {}
        self._finalized = False

    # -- construction --------------------------------------------------------
    def add_switch(self, name: str) -> None:
        """Register a switch (one per physical cluster's interconnect)."""
        self._ensure_mutable()
        if name in self._switches:
            raise ConfigurationError(f"duplicate switch {name!r}")
        self._switches[name] = _Switch(name)
        self._switch_graph.add_node(name)

    def add_host(
        self,
        name: str,
        switch: str,
        cores: int,
        speed: float = 1.0,
        nic: LinkSpec | None = None,
        disks: list[tuple[float, float]] | None = None,
        memory: int = 1 << 30,
        cluster_name: str | None = None,
    ) -> Host:
        """Create a host attached to ``switch`` through a NIC access link."""
        self._ensure_mutable()
        if name in self.hosts:
            raise ConfigurationError(f"duplicate host {name!r}")
        if switch not in self._switches:
            raise ConfigurationError(f"unknown switch {switch!r}")
        nic = nic or LinkSpec(GIGABIT, GIGABIT_LATENCY, GIGABIT_MSG_OVERHEAD)
        host = Host(
            self.env,
            name,
            cores=cores,
            speed=speed,
            disks=disks,
            memory=memory,
            cluster_name=cluster_name or switch,
        )
        self.hosts[name] = host
        self._switches[switch].hosts.append(name)
        self._host_switch[name] = switch
        self._host_access[name] = nic
        # Full-duplex NIC: separate tx and rx links.
        self.network.add_link(f"{name}.tx", nic.bandwidth)
        self.network.add_link(f"{name}.rx", nic.bandwidth)
        return host

    def connect_switches(self, a: str, b: str, spec: LinkSpec) -> None:
        """Join two switches with a full-duplex trunk."""
        self._ensure_mutable()
        for sw in (a, b):
            if sw not in self._switches:
                raise ConfigurationError(f"unknown switch {sw!r}")
        self.network.add_link(f"{a}->{b}", spec.bandwidth)
        self.network.add_link(f"{b}->{a}", spec.bandwidth)
        self._switch_graph.add_edge(a, b, spec=spec)

    def finalize(self) -> "Cluster":
        """Compute the (host, host) routing table.  Idempotent."""
        if self._finalized:
            return self
        names = list(self.hosts)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                self._install_route(src, dst)
        self._finalized = True
        return self

    def _install_route(self, src: str, dst: str) -> None:
        sw_src = self._host_switch[src]
        sw_dst = self._host_switch[dst]
        nic_src = self._host_access[src]
        nic_dst = self._host_access[dst]
        links = [self.network.links[f"{src}.tx"]]
        latency = nic_src.latency + nic_dst.latency
        overhead = nic_src.message_overhead + nic_dst.message_overhead
        if sw_src != sw_dst:
            try:
                path = nx.shortest_path(self._switch_graph, sw_src, sw_dst)
            except nx.NetworkXNoPath:
                raise ConfigurationError(
                    f"switches {sw_src!r} and {sw_dst!r} are not connected"
                ) from None
            for a, b in zip(path, path[1:]):
                spec: LinkSpec = self._switch_graph.edges[a, b]["spec"]
                links.append(self.network.links[f"{a}->{b}"])
                latency += spec.latency
                overhead += spec.message_overhead
        links.append(self.network.links[f"{dst}.rx"])
        self.network.set_route(src, dst, links, latency, overhead)

    def _ensure_mutable(self) -> None:
        if self._finalized:
            raise ConfigurationError("cluster already finalized")

    # -- operation ------------------------------------------------------------
    def transfer(self, src: str, dst: str, nbytes: float) -> Event:
        """Send ``nbytes`` from host ``src`` to host ``dst``."""
        if not self._finalized:
            raise ConfigurationError("call finalize() before transfer()")
        return self.network.transfer(src, dst, nbytes)

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self.hosts[name]
        except KeyError:
            raise ConfigurationError(f"unknown host {name!r}") from None

    def hosts_in(self, cluster_name: str) -> list[Host]:
        """All hosts belonging to the named sub-cluster, in creation order."""
        return [h for h in self.hosts.values() if h.cluster_name == cluster_name]

    def set_background_load(self, jobs: int, hosts: list[str] | None = None) -> None:
        """Apply ``jobs`` background jobs to ``hosts`` (default: every host)."""
        for name in hosts if hosts is not None else list(self.hosts):
            self.host(name).set_background_load(jobs)


def umd_testbed(
    env: Environment,
    red_nodes: int = 8,
    blue_nodes: int = 8,
    rogue_nodes: int = 8,
    deathstar: bool = True,
) -> Cluster:
    """Rebuild the University of Maryland testbed from the paper.

    - **Red**: ``red_nodes`` 2-way PII-450 nodes, 256 MB, 1 SCSI disk, GigE.
    - **Deathstar**: one 8-way PIII-550 node, 4 GB, Fast Ethernet uplink.
    - **Blue**: ``blue_nodes`` 2-way PIII-550 nodes, 1 GB, 2 SCSI disks, GigE.
    - **Rogue**: ``rogue_nodes`` 1-way PIII-650 nodes, 128 MB, 2 IDE disks,
      switched Fast Ethernet inside the cluster, GigE uplink to the core.
    """
    cluster = Cluster(env)
    gige = LinkSpec(GIGABIT, GIGABIT_LATENCY, GIGABIT_MSG_OVERHEAD)
    faste = LinkSpec(FAST_ETHERNET, FAST_ETHERNET_LATENCY, FAST_ETHERNET_MSG_OVERHEAD)

    cluster.add_switch("core")
    cluster.add_switch("red")
    cluster.add_switch("blue")
    cluster.add_switch("rogue")
    cluster.connect_switches("red", "core", gige)
    cluster.connect_switches("blue", "core", gige)
    cluster.connect_switches("rogue", "core", gige)
    if deathstar:
        cluster.add_switch("deathstar")
        cluster.connect_switches("deathstar", "core", faste)

    for i in range(red_nodes):
        cluster.add_host(
            f"red{i}", "red", cores=2, speed=PII_450, nic=gige,
            disks=[SCSI_DISK], memory=256 << 20, cluster_name="red",
        )
    for i in range(blue_nodes):
        cluster.add_host(
            f"blue{i}", "blue", cores=2, speed=PIII_550, nic=gige,
            disks=[SCSI_DISK, SCSI_DISK], memory=1 << 30, cluster_name="blue",
        )
    for i in range(rogue_nodes):
        cluster.add_host(
            f"rogue{i}", "rogue", cores=1, speed=PIII_650, nic=faste,
            disks=[IDE_DISK, IDE_DISK], memory=128 << 20, cluster_name="rogue",
        )
    if deathstar:
        cluster.add_host(
            "deathstar0", "deathstar", cores=8, speed=PIII_550, nic=faste,
            disks=[SCSI_DISK], memory=4 << 30, cluster_name="deathstar",
        )
    return cluster.finalize()


def homogeneous_cluster(
    env: Environment,
    nodes: int,
    cores: int = 1,
    speed: float = 1.0,
    nic: LinkSpec | None = None,
    disks: list[tuple[float, float]] | None = None,
    name: str = "node",
) -> Cluster:
    """A single-switch cluster of identical nodes (ADR's natural habitat)."""
    cluster = Cluster(env)
    cluster.add_switch("sw")
    nic = nic or LinkSpec(FAST_ETHERNET, FAST_ETHERNET_LATENCY, FAST_ETHERNET_MSG_OVERHEAD)
    for i in range(nodes):
        cluster.add_host(
            f"{name}{i}", "sw", cores=cores, speed=speed, nic=nic,
            disks=disks if disks is not None else [IDE_DISK, IDE_DISK],
            cluster_name=name,
        )
    return cluster.finalize()
