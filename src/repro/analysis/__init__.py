"""Static analysis of filter pipelines and filter code.

Five passes, all reporting structured :class:`Diagnostic` objects with a
stable rule id, a severity and a fix hint (see
:mod:`repro.analysis.rules` for the catalogue):

**Pass 1 — pipeline verifier** (:func:`verify_pipeline`): rule-based
checks over ``(FilterGraph, Placement, writer policies, cluster hosts,
BufferCodec)`` — dangling/unreachable filters and streams, cycles,
source/sink arity, copy sets on unknown hosts, degenerate WRR weights,
demand-driven windows that defeat the bounded queues, phase-synchronised
(z-buffer) filters behind unsynchronised fan-in, and payload-dtype /
buffer-size mismatches against the codec.  All three engines run it
before executing: ERROR diagnostics abort the run, WARNING diagnostics
become ``analysis`` trace events.

**Pass 2 — filter-code lint** (:func:`lint_file` / :func:`lint_class`):
stdlib-``ast`` checks over :class:`~repro.core.filter.Filter` subclasses
— payload mutation after ``ctx.write``, silent filters that never feed
their consumers, blocking calls in the per-buffer callback, unpicklable
state that cannot cross the process engine's fork/pickle boundary, and
content-routed policies whose ``route()`` ignores its tags.  Nothing is
imported or executed, so it lints untrusted pipeline definitions safely.

**Deep passes** (``verify_pipeline(..., deep=True)`` / ``repro lint
--deep``), run by the engines at construction:

- **effects** (:mod:`repro.analysis.effects`, ``E7xx``): AST effect and
  purity inference per filter class (PURE / STATEFUL / IO /
  NONDETERMINISTIC), rolled up to subgraphs;
  :func:`certify_memoisable` is the purity gate for result caches.
- **dataflow** (:mod:`repro.analysis.dataflow`, ``M8xx``): symbolic
  propagation of declared buffer sizes and dtypes through graph +
  placement — per-host queue/window high-water bounds, shared-memory
  slab mismatches, tile fan-in bursts, transitive dtype conflicts.
- **protocol** (:mod:`repro.analysis.protocol`, ``F9xx``): a bounded
  model checker over the credit/ack/close protocol proving
  deadlock-freedom and EOW delivery, with counterexample event traces.

All passes drive the ``repro lint`` CLI and the CI self-check.
"""

from repro.analysis.dataflow import (
    DataflowResult,
    EdgeFlow,
    HostLoad,
    compute_dataflow,
    verify_dataflow,
)
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.effects import (
    Effect,
    EffectSummary,
    MemoCertificate,
    certify_memoisable,
    graph_effects,
    infer_class_effects,
    spec_effects,
    subgraph_effect,
    verify_effects,
)
from repro.analysis.filtercode import (
    lint_class,
    lint_file,
    lint_graph_filters,
    lint_source,
)
from repro.analysis.pipeline import (
    verify_buffers,
    verify_flow,
    verify_graph,
    verify_pipeline,
    verify_placement,
)
from repro.analysis.protocol import (
    ProtocolModel,
    ProtocolResult,
    build_model,
    check_model,
    check_protocol,
    verify_protocol,
)
from repro.analysis.report import (
    format_rule_catalogue,
    format_text,
    to_json,
    to_json_dict,
)
from repro.analysis.rules import RULES, Rule, rule_catalogue

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "Rule",
    "RULES",
    "rule_catalogue",
    "verify_graph",
    "verify_placement",
    "verify_flow",
    "verify_buffers",
    "verify_pipeline",
    "Effect",
    "EffectSummary",
    "MemoCertificate",
    "infer_class_effects",
    "spec_effects",
    "graph_effects",
    "subgraph_effect",
    "certify_memoisable",
    "verify_effects",
    "EdgeFlow",
    "HostLoad",
    "DataflowResult",
    "compute_dataflow",
    "verify_dataflow",
    "ProtocolModel",
    "ProtocolResult",
    "build_model",
    "check_model",
    "check_protocol",
    "verify_protocol",
    "lint_source",
    "lint_file",
    "lint_class",
    "lint_graph_filters",
    "format_text",
    "to_json",
    "to_json_dict",
    "format_rule_catalogue",
]
