"""Static analysis of filter pipelines and filter code.

Two passes, both reporting structured :class:`Diagnostic` objects with a
stable rule id, a severity and a fix hint (see
:mod:`repro.analysis.rules` for the catalogue):

**Pass 1 — pipeline verifier** (:func:`verify_pipeline`): rule-based
checks over ``(FilterGraph, Placement, writer policies, cluster hosts,
BufferCodec)`` — dangling/unreachable filters and streams, cycles,
source/sink arity, copy sets on unknown hosts, degenerate WRR weights,
demand-driven windows that defeat the bounded queues, phase-synchronised
(z-buffer) filters behind unsynchronised fan-in, and payload-dtype /
buffer-size mismatches against the codec.  All three engines run it
before executing: ERROR diagnostics abort the run, WARNING diagnostics
become ``analysis`` trace events.

**Pass 2 — filter-code lint** (:func:`lint_file` / :func:`lint_class`):
stdlib-``ast`` checks over :class:`~repro.core.filter.Filter` subclasses
— payload mutation after ``ctx.write``, silent filters that never feed
their consumers, blocking calls in the per-buffer callback, and
unpicklable state that cannot cross the process engine's fork/pickle
boundary.  Nothing is imported or executed, so it lints untrusted
pipeline definitions safely.

Both passes drive the ``repro lint`` CLI and the CI self-check.
"""

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.filtercode import (
    lint_class,
    lint_file,
    lint_graph_filters,
    lint_source,
)
from repro.analysis.pipeline import (
    verify_buffers,
    verify_flow,
    verify_graph,
    verify_pipeline,
    verify_placement,
)
from repro.analysis.report import (
    format_rule_catalogue,
    format_text,
    to_json,
    to_json_dict,
)
from repro.analysis.rules import RULES, Rule, rule_catalogue

__all__ = [
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "Rule",
    "RULES",
    "rule_catalogue",
    "verify_graph",
    "verify_placement",
    "verify_flow",
    "verify_buffers",
    "verify_pipeline",
    "lint_source",
    "lint_file",
    "lint_class",
    "lint_graph_filters",
    "format_text",
    "to_json",
    "to_json_dict",
    "format_rule_catalogue",
]
