"""Deep pass 2: symbolic resource dataflow.

Propagates the static ``FilterSpec`` metadata (``output_nbytes``,
``output_buffers``, dtypes) end-to-end through a (graph, placement,
policies) configuration to compute per-edge byte figures and per-host
high-water memory bounds, and reports the ``M8xx`` rules:

``M801``  static queue + window high-water bound exceeds a host budget
``M802``  payloads sized just under the codec's shared-memory threshold
``M803``  tile-framebuffer fan-in burst overfills an owner's queue
``M804``  dtype conflicts across pass-through chains (transitive B501)

The bounds are *static worst cases*: every queue slot holds the largest
declared buffer of its copy set, every sliding window is full, and every
producer copy flushes one fragment per owned tile at the phase boundary.
They intentionally over-approximate — the point is to catch placements
that can only work if backpressure never happens.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.buffer import BufferCodec
    from repro.core.graph import FilterGraph
    from repro.core.placement import Placement
    from repro.core.policies import WriterPolicy

__all__ = [
    "EdgeFlow",
    "HostLoad",
    "DataflowResult",
    "compute_dataflow",
    "verify_dataflow",
]


@dataclass(frozen=True)
class EdgeFlow:
    """Static byte/dtype figures for one logical stream."""

    stream: str
    src: str
    dst: str
    #: Declared wire size of one buffer (None when the producer spec is silent).
    nbytes: int | None
    #: Resolved payload dtype and where it came from ("declared"/"propagated").
    dtype: str | None
    dtype_origin: str
    #: nbytes x output_buffers: bytes shipped per unit of work, when declared.
    bytes_per_uow: int | None


@dataclass
class HostLoad:
    """Static high-water memory bound of one host."""

    host: str
    #: Bound of bytes parked in bounded copy-set queues (+ one decoded
    #: buffer in flight per consumer copy).
    queue_bytes: int = 0
    #: Bound of bytes pinned by full sliding windows of producers here.
    window_bytes: int = 0
    #: Subset of queue/window bytes that would travel as shared memory.
    shared_bytes: int = 0
    #: Human-readable contribution terms, for the M801 message.
    contributions: list[str] = field(default_factory=list)
    #: Streams whose size is undeclared (excluded from the bound).
    unknown_streams: list[str] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """The combined queue + window high-water bound."""
        return self.queue_bytes + self.window_bytes


@dataclass
class DataflowResult:
    """Everything the dataflow pass computed."""

    edges: dict[str, EdgeFlow]
    hosts: dict[str, HostLoad]
    #: (stream, resolved dtype, consumer declared dtype) conflicts found
    #: while propagating dtypes through pass-through filters.
    dtype_conflicts: list[tuple[str, str, str]] = field(default_factory=list)


def _resolved_dtypes(graph: "FilterGraph") -> dict[str, tuple[str, str]]:
    """stream name -> (dtype, origin) with pass-through propagation.

    A filter that declares *neither* dtype and has exactly one input
    stream is treated as pass-through: its outputs inherit the input's
    resolved dtype with origin ``"propagated"``.
    """
    resolved: dict[str, tuple[str, str]] = {}
    try:
        order = graph.topological_order()
    except Exception:
        order = list(graph.filters)
    for name in order:
        spec = graph.filters.get(name)
        if spec is None:
            continue
        out_dtype: tuple[str, str] | None = None
        if spec.output_dtype is not None:
            out_dtype = (spec.output_dtype, "declared")
        elif (
            spec.input_dtype is None
            and len(spec.inputs) == 1
            and spec.inputs[0].name in resolved
        ):
            dtype, _ = resolved[spec.inputs[0].name]
            out_dtype = (dtype, "propagated")
        if out_dtype is not None:
            for stream in spec.outputs:
                resolved[stream.name] = out_dtype
    return resolved


def compute_dataflow(
    graph: "FilterGraph",
    placement: "Placement | None" = None,
    policy_for: "Callable[[str], Callable[[], WriterPolicy]] | None" = None,
    queue_capacity: int = 8,
    codec: "BufferCodec | None" = None,
) -> DataflowResult:
    """Compute per-edge flows and per-host high-water bounds."""
    dtypes = _resolved_dtypes(graph)
    edges: dict[str, EdgeFlow] = {}
    conflicts: list[tuple[str, str, str]] = []
    for stream in graph.streams.values():
        src = graph.filters.get(stream.src)
        dst = graph.filters.get(stream.dst)
        if src is None or dst is None:
            continue
        dtype, origin = dtypes.get(stream.name, (None, ""))
        nbytes = src.output_nbytes
        per_uow = (
            nbytes * src.output_buffers
            if nbytes is not None and src.output_buffers is not None
            else None
        )
        edges[stream.name] = EdgeFlow(
            stream=stream.name,
            src=stream.src,
            dst=stream.dst,
            nbytes=nbytes,
            dtype=dtype,
            dtype_origin=origin,
            bytes_per_uow=per_uow,
        )
        if (
            origin == "propagated"
            and dtype is not None
            and dst.input_dtype is not None
            and dst.input_dtype != dtype
        ):
            conflicts.append((stream.name, dtype, dst.input_dtype))

    hosts: dict[str, HostLoad] = {}
    if placement is not None:
        placed = set(placement.placed_filters())

        def load(host: str) -> HostLoad:
            if host not in hosts:
                hosts[host] = HostLoad(host)
            return hosts[host]

        threshold = codec.shm_threshold if codec is not None else None
        for name, spec in graph.filters.items():
            if name not in placed:
                continue
            copysets = placement.copysets(name)
            # Consumer side: each copy set owns one bounded queue whose
            # slots may all hold the largest inbound buffer, plus one
            # decoded buffer in flight per copy.
            in_sizes = [
                edges[s.name].nbytes
                for s in spec.inputs
                if s.name in edges and edges[s.name].nbytes is not None
            ]
            unknown_in = [
                s.name
                for s in spec.inputs
                if s.name not in edges or edges[s.name].nbytes is None
            ]
            biggest = max((n for n in in_sizes if n is not None), default=0)
            for cs in copysets:
                entry = load(cs.host)
                if biggest:
                    amount = biggest * (queue_capacity + cs.copies)
                    entry.queue_bytes += amount
                    entry.contributions.append(
                        f"{name}@{cs.host}: queue {queue_capacity}+{cs.copies} "
                        f"x {biggest} B"
                    )
                    if threshold is not None and biggest >= threshold:
                        entry.shared_bytes += amount
                entry.unknown_streams.extend(unknown_in)
            # Producer side: full sliding windows pin sent-but-unacked
            # buffers per copy; unwindowed policies pin one in-flight
            # buffer per copy.
            for stream in spec.outputs:
                flow = edges.get(stream.name)
                if flow is None or flow.nbytes is None:
                    for cs in copysets:
                        load(cs.host).unknown_streams.append(stream.name)
                    continue
                window = 1
                if policy_for is not None:
                    try:
                        described = policy_for(stream.name)().describe()
                    except Exception:  # pragma: no cover - user factory failure
                        described = {}
                    w = described.get("window")
                    if isinstance(w, int) and described.get("needs_ack"):
                        window = max(w, 1)
                for cs in copysets:
                    entry = load(cs.host)
                    amount = flow.nbytes * window * cs.copies
                    entry.window_bytes += amount
                    entry.contributions.append(
                        f"{name}@{cs.host}: window {window} x {cs.copies} "
                        f"copies x {flow.nbytes} B on {stream.name!r}"
                    )
                    if threshold is not None and flow.nbytes >= threshold:
                        entry.shared_bytes += amount
    return DataflowResult(edges=edges, hosts=hosts, dtype_conflicts=conflicts)


def verify_dataflow(
    graph: "FilterGraph",
    placement: "Placement | None" = None,
    policy_for: "Callable[[str], Callable[[], WriterPolicy]] | None" = None,
    queue_capacity: int = 8,
    codec: "BufferCodec | None" = None,
    host_memory: Mapping[str, int] | None = None,
) -> list[Diagnostic]:
    """Run the ``M8xx`` symbolic-dataflow rules."""
    out: list[Diagnostic] = []
    result = compute_dataflow(graph, placement, policy_for, queue_capacity, codec)

    # M801: high-water bound vs declared host budget.
    if host_memory is not None:
        for host, entry in sorted(result.hosts.items()):
            budget = host_memory.get(host)
            if budget is None or entry.total_bytes <= budget:
                continue
            detail = "; ".join(entry.contributions[:4])
            suffix = (
                f" (bound excludes {len(set(entry.unknown_streams))} "
                f"undeclared-size streams)"
                if entry.unknown_streams
                else ""
            )
            out.append(
                RULES["M801"].diagnostic(
                    host,
                    f"host {host!r}: static high-water bound "
                    f"{entry.total_bytes} B exceeds its {budget} B budget "
                    f"({detail}){suffix}",
                )
            )

    # M802: payloads just under the shared-memory threshold pickle inline.
    if codec is not None and codec.use_shared_memory:
        for stream_name, flow in sorted(result.edges.items()):
            if flow.nbytes is None:
                continue
            if codec.shm_threshold // 2 <= flow.nbytes < codec.shm_threshold:
                out.append(
                    RULES["M802"].diagnostic(
                        stream_name,
                        f"stream {stream_name!r}: declared {flow.nbytes} B "
                        f"buffers fall just below the codec's "
                        f"{codec.shm_threshold} B shared-memory threshold; "
                        f"near-slab payloads pickle inline through the "
                        f"bounded control queue",
                    )
                )

    # M803: phase-boundary fan-in burst at a tile-mapped merge.
    if placement is not None:
        placed = set(placement.placed_filters())
        for name, spec in graph.filters.items():
            tile_map = spec.tile_map
            if tile_map is None or name not in placed:
                continue
            try:
                owners = int(tile_map.n_owners)
                tiles_per_owner = [
                    len(tile_map.tiles_of_owner(o)) for o in range(owners)
                ]
            except Exception:  # pragma: no cover - Z402 covers broken maps
                continue
            if not tiles_per_owner:
                continue
            producers = 0
            nbytes: int | None = 0
            for stream in spec.inputs:
                if stream.src not in placed:
                    continue
                producers += sum(
                    cs.copies for cs in placement.copysets(stream.src)
                )
                flow = result.edges.get(stream.name)
                if nbytes is not None and flow is not None and flow.nbytes:
                    nbytes += flow.nbytes
                else:
                    nbytes = None
            if producers == 0:
                continue
            worst_tiles = max(tiles_per_owner)
            burst = producers * worst_tiles
            if burst > queue_capacity:
                byte_note = (
                    f" (~{producers * (nbytes or 0)} B per owner queue)"
                    if nbytes
                    else ""
                )
                out.append(
                    RULES["M803"].diagnostic(
                        name,
                        f"tile merge {name!r}: at the phase boundary "
                        f"{producers} producer copies x {worst_tiles} tiles "
                        f"on the busiest owner = {burst} fragments, but its "
                        f"queue holds {queue_capacity}{byte_note}; producers "
                        f"serialise on blocking puts at the merge barrier",
                    )
                )

    # M804: transitive dtype conflicts found during propagation.
    for stream_name, dtype, expected in result.dtype_conflicts:
        out.append(
            RULES["M804"].diagnostic(
                stream_name,
                f"stream {stream_name!r}: dtype {dtype!r} propagated from "
                f"upstream declarations, but the consumer declares "
                f"input_dtype {expected!r}",
            )
        )
    return out
