"""The rule catalogue: every check either analysis pass can report.

Rule ids are stable and grouped by scope:

=========  ===============================================================
``G1xx``   graph structure (pipeline verifier)
``P2xx``   placement (pipeline verifier)
``W3xx``   writer policy / flow control (pipeline verifier)
``Z4xx``   phase synchronisation (pipeline verifier)
``B5xx``   buffer size / payload dtype vs the codec (pipeline verifier)
``C6xx``   filter code (AST lint)
``E7xx``   filter effects / purity (deep pass 1)
``M8xx``   symbolic resource dataflow (deep pass 2)
``F9xx``   flow-control protocol model checking (deep pass 3)
=========  ===============================================================

Each :class:`Rule` carries a default severity and a generic fix hint; a
pass may override either per finding (e.g. ``C604`` unpicklable state is
promoted to ERROR when the pipeline targets the process engine).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = ["Rule", "RULES", "rule_catalogue"]


@dataclass(frozen=True)
class Rule:
    """One statically checkable property of a pipeline or its filter code."""

    id: str
    name: str
    severity: Severity
    scope: str
    summary: str
    hint: str

    def diagnostic(
        self,
        subject: str,
        message: str,
        hint: str | None = None,
        severity: Severity | None = None,
        location: str = "",
    ) -> Diagnostic:
        """Build one finding of this rule (defaults from the catalogue)."""
        return Diagnostic(
            rule=self.id,
            name=self.name,
            severity=self.severity if severity is None else severity,
            subject=subject,
            message=message,
            hint=self.hint if hint is None else hint,
            location=location,
        )


#: Rule id -> rule, in catalogue order.
RULES: dict[str, Rule] = {}


def _rule(
    id: str, name: str, severity: Severity, scope: str, summary: str, hint: str
) -> Rule:
    rule = Rule(id, name, severity, scope, summary, hint)
    if id in RULES:  # pragma: no cover - catalogue construction bug
        raise ValueError(f"duplicate rule id {id!r}")
    RULES[id] = rule
    return rule


def rule_catalogue() -> list[Rule]:
    """All rules in id order (the documented catalogue)."""
    return [RULES[key] for key in sorted(RULES)]


# -- G1xx: graph structure ---------------------------------------------------
_rule(
    "G101", "empty-graph", Severity.ERROR, "graph",
    "The graph has no filters; there is nothing to run.",
    "Add at least one source filter with add_filter(..., is_source=True).",
)
_rule(
    "G102", "cycle", Severity.ERROR, "graph",
    "The stream graph contains a cycle; end-of-work can never propagate "
    "and every copy on the cycle deadlocks waiting for upstream close.",
    "Break the cycle; filter graphs must be DAGs (route feedback through "
    "a separate unit of work instead).",
)
_rule(
    "G103", "orphan-filter", Severity.ERROR, "graph",
    "A filter has no input streams but is not declared a source, so it "
    "would close immediately without producing or consuming anything.",
    "Mark it add_filter(..., is_source=True) or connect an input stream.",
)
_rule(
    "G104", "source-with-inputs", Severity.ERROR, "graph",
    "A declared source filter has input streams; sources generate all "
    "their output from flush() and never receive buffers.",
    "Drop is_source=True or remove the incoming streams.",
)
_rule(
    "G105", "no-source", Severity.ERROR, "graph",
    "No filter is a source; no data can ever enter the pipeline.",
    "Declare at least one filter with is_source=True.",
)
_rule(
    "G106", "dangling-stream", Severity.ERROR, "graph",
    "A stream references a filter that is not in the graph (the spec "
    "tables were mutated inconsistently).",
    "Create streams with FilterGraph.connect() only; it keeps the filter "
    "and stream tables consistent.",
)
_rule(
    "G107", "unreachable-filter", Severity.WARNING, "graph",
    "A filter cannot be reached from any source; it will only ever see "
    "end-of-work markers and process no data.",
    "Connect it downstream of a source or remove it.",
)
_rule(
    "G108", "parallel-streams", Severity.INFO, "graph",
    "Two filters are connected by more than one parallel stream; each "
    "stream gets its own writer and policy instance.",
    "Intentional fan-out aside, merge parallel streams into one and "
    "multiplex on buffer tags.",
)

# -- P2xx: placement ---------------------------------------------------------
_rule(
    "P201", "unplaced-filter", Severity.ERROR, "placement",
    "A graph filter has no placement; engines cannot instantiate copies.",
    "Place every filter with Placement.place()/spread().",
)
_rule(
    "P202", "unknown-filter-placed", Severity.ERROR, "placement",
    "The placement names a filter that is not in the graph.",
    "Remove the stale entry or add the filter to the graph.",
)
_rule(
    "P203", "unknown-host", Severity.ERROR, "placement",
    "A copy set is placed on a host the cluster does not have.",
    "Place copy sets only on hosts the target cluster declares.",
)
_rule(
    "P204", "multi-copy-sink", Severity.WARNING, "placement",
    "A sink filter runs more than one transparent copy; each copy "
    "produces an independent partial result and engines return them as "
    "a list, which is rarely what a merge stage intends.",
    "Place result-producing sinks as a single copy on one host.",
)
_rule(
    "P205", "duplicate-host", Severity.ERROR, "placement",
    "One filter has two copy sets on the same host; writer policies "
    "would double-count the host's capacity.",
    "Use one copy set per host and raise its copy count instead.",
)
_rule(
    "P206", "bad-copy-count", Severity.ERROR, "placement",
    "A copy set declares fewer than one copy.",
    "Every copy set needs >= 1 transparent copies.",
)

# -- W3xx: writer policy / flow control --------------------------------------
_rule(
    "W301", "wrr-degenerate", Severity.WARNING, "flow",
    "Weighted Round Robin on a stream whose consumer copy sets all run "
    "exactly one copy; the weight vector carries no information and the "
    "policy degenerates to plain Round Robin.",
    "Use RR, or give hosts different copy counts so the weights matter.",
)
_rule(
    "W302", "dd-window-exceeds-queue", Severity.WARNING, "flow",
    "A demand-driven window is larger than the bounded copy-set queue, "
    "so the window can never fill: backpressure comes from blocking "
    "queue puts *after* the routing decision (head-of-line blocking) "
    "instead of from the sliding window.",
    "Set the policy window <= the engine queue_capacity.",
)
_rule(
    "W303", "dd-ack-starvation", Severity.WARNING, "flow",
    "A demand-driven window of 1 serialises every send behind a full "
    "ack round trip; one slow acknowledgment starves the producer and "
    "throughput collapses to one buffer per RTT.",
    "Use a window >= 2 (the paper's sliding window covers ack latency).",
)

# -- Z4xx: phase synchronisation ---------------------------------------------
_rule(
    "Z401", "zbuffer-unsynced-fanin", Severity.ERROR, "phase",
    "A phase-synchronised filter (it accumulates and emits only at the "
    "end-of-work phase boundary, like the z-buffer raster/merge) sits "
    "behind a fan-in of multiple streams: its flush fires only after "
    "*every* input delivers end-of-work, so the phases of the input "
    "streams interleave in one accumulator and a lagging stream stalls "
    "the phase boundary indefinitely.",
    "Give phase-synchronised filters exactly one input stream; merge "
    "fan-in in an unsynchronised filter upstream.",
)

_rule(
    "Z402", "tile-map-invalid", Severity.ERROR, "tile",
    "A filter declares a tile map that does not partition its viewport: "
    "tiles leave pixels uncovered, overlap each other, fall outside the "
    "viewport, or name owners inconsistently, so tile-routed fragments "
    "are lost or double-merged.",
    "Build tile maps with TileMap.rows()/grid(), or fix the hand-built "
    "map until TileMap.problems() is empty.",
)
_rule(
    "Z403", "tile-fanin-mismatch", Severity.ERROR, "tile",
    "A tile-mapped merge filter's placement does not match its tile "
    "map's owner count: the tile->owner mapping indexes merge copies in "
    "placement order, so a missing copy silently drops its tiles and a "
    "multi-copy set makes owner indices ambiguous (copies on one host "
    "share a single queue).",
    "Place exactly tile_map.n_owners copy sets of one copy each, on "
    "distinct host labels, in owner order.",
)
_rule(
    "Z404", "tile-routing-mismatch", Severity.ERROR, "tile",
    "Tile partitioning and content routing must come in pairs: a "
    "tile-mapped consumer behind a capacity-based policy (RR/WRR/DD) "
    "receives tiles it does not own, and a content-routed policy into "
    "an unmapped consumer has no tile_owner tags to route on.",
    "Pair TileRouted streams with tile-mapped consumers: set the "
    "stream's policy to TILE and give the consumer spec its tile_map "
    "(or drop both).",
)
_rule(
    "Z405", "content-routed-unsynced", Severity.WARNING, "tile",
    "A content-routed policy feeds a consumer that is not "
    "phase-synchronised: the consumer streams partial per-tile state "
    "downstream before every producer has delivered its fragments for "
    "the tile, so downstream observes torn tiles.",
    "Mark the tile-merge consumer phase_synchronised=True so it emits "
    "only at the end-of-work phase boundary.",
)

# -- B5xx: buffers vs the codec ----------------------------------------------
_rule(
    "B501", "payload-dtype-mismatch", Severity.ERROR, "buffer",
    "Producer and consumer declare different payload dtypes for the "
    "same stream; the consumer would misinterpret every buffer.",
    "Align the declared output_dtype/input_dtype of the two filters.",
)
_rule(
    "B502", "codec-bypass", Severity.WARNING, "buffer",
    "A stream declares buffers at least as large as the codec's "
    "shared-memory threshold, but the codec has shared memory disabled: "
    "every payload will be fully pickled through the control queues "
    "instead of travelling zero-copy.",
    "Enable BufferCodec shared memory or shrink the declared buffers.",
)

# -- C6xx: filter code (AST lint) --------------------------------------------
_rule(
    "C600", "parse-error", Severity.ERROR, "code",
    "A file handed to the filter-code lint does not parse as Python.",
    "Fix the syntax error before linting.",
)
_rule(
    "C601", "payload-mutation-after-send", Severity.ERROR, "code",
    "A callback mutates an object after passing it to ctx.write(); the "
    "threaded engine shares payloads by reference and the process "
    "engine may still be serialising them, so the consumer races the "
    "mutation.",
    "Treat buffers as frozen once written; build a new buffer instead.",
)
_rule(
    "C602", "missing-eow-propagation", Severity.WARNING, "code",
    "A filter overrides handle() but never writes downstream and "
    "exposes no result(); consumers would only ever receive its "
    "end-of-work marker.",
    "Call ctx.write(...) from handle()/flush(), or expose result() if "
    "the filter is a sink.",
)
_rule(
    "C603", "blocking-call-in-callback", Severity.WARNING, "code",
    "The per-buffer handle() callback makes a blocking call (sleep, "
    "file or network I/O); it stalls the whole copy and, through "
    "backpressure, the upstream pipeline.",
    "Do I/O in a source filter's flush() or move it off the hot path.",
)
_rule(
    "C604", "unpicklable-state", Severity.WARNING, "code",
    "A filter stores unpicklable state (lambdas, locks, open handles) "
    "on self; such filters cannot cross the process engine's fork/"
    "pickle boundary and break run_cycles result collection.",
    "Keep filter state picklable: named functions, plain data, and "
    "handles opened inside the callback that uses them.",
)
_rule(
    "C605", "stale-cycle-state", Severity.WARNING, "code",
    "A filter accumulates into attributes on self from handle()/flush() "
    "but never resets them in init(); filter instances are reused across "
    "cycles by run_cycles and across queries by warm pools, so the "
    "accumulator carries data from the previous unit of work into the "
    "next.",
    "Reset every accumulator in init() — it runs once per cycle, before "
    "the first buffer; __init__ runs only once per copy lifetime.",
)
_rule(
    "C606", "route-ignores-tile-owner", Severity.WARNING, "code",
    "A content-routed writer policy overrides route() without ever "
    "reading its tags argument; every tile-tagged buffer is routed "
    "blindly, so merge copies receive tiles they do not own (the "
    "code-level twin of the graph-level Z404 mismatch).",
    "Route on tags['tile_owner'] inside route(), or subclass a "
    "capacity-based policy instead of a content-routed one.",
)

# -- E7xx: filter effects / purity (deep pass 1) -----------------------------
_rule(
    "E701", "declared-effect-mismatch", Severity.WARNING, "effects",
    "A filter's declared effects class is weaker than what its code "
    "infers (e.g. declared pure, but the class writes self attributes "
    "or does I/O); memoisation and replay decisions based on the "
    "declaration would be unsound.",
    "Fix the declaration on add_filter(..., effects=...) or make the "
    "filter match it.",
)
_rule(
    "E702", "nondeterministic-filter", Severity.WARNING, "effects",
    "A filter draws on nondeterministic inputs (random, time, uuid); "
    "replaying or rebinding the pipeline cannot reproduce its output "
    "and cached results are unverifiable.",
    "Seed the randomness from the unit-of-work descriptor, or declare "
    "effects='nondeterministic' so caching layers skip the filter.",
)
_rule(
    "E703", "impure-memoisation", Severity.ERROR, "effects",
    "A subgraph submitted for memoisation certification contains a "
    "filter that is not pure (stateful, I/O-bound or nondeterministic); "
    "caching its output would replay stale state.",
    "Memoise only pure subgraphs; split the impure filter out of the "
    "cached region.",
)
_rule(
    "E704", "unknown-effect", Severity.WARNING, "effects",
    "A filter in a memoisation candidate has no declared effects and "
    "its factory cannot be resolved to a class for inference; the "
    "certifier must assume the worst.",
    "Declare add_filter(..., effects=...) or use a class (or a lambda "
    "closing over one) as the factory so the inferencer can see it.",
)
_rule(
    "E705", "non-convex-subgraph", Severity.ERROR, "effects",
    "A memoisation candidate subgraph is not convex: a path leaves the "
    "subgraph and re-enters it, so the cached region's inputs depend on "
    "its own outputs and a cache hit would starve the outside path.",
    "Memoise convex subgraphs only: include every filter on every path "
    "between members.",
)
_rule(
    "E706", "cache-over-uncertified-subgraph", Severity.ERROR, "effects",
    "A result cache is configured over a subgraph that "
    "certify_memoisable() rejects (impure or unknown-effect members, or "
    "a non-convex member set); serving memoised replies from it could "
    "return results a live run would not produce.",
    "Attach the cache to a certified subgraph (e.g. the standalone "
    "extract stage), or run the pipeline uncached.",
)

# -- M8xx: symbolic resource dataflow (deep pass 2) --------------------------
_rule(
    "M801", "host-memory-overcommit", Severity.WARNING, "memory",
    "The static high-water bound of queued + windowed buffers on a host "
    "exceeds its declared memory budget; under backpressure the host "
    "pages or OOMs exactly when the pipeline is busiest.",
    "Shrink queue_capacity, policy windows or declared buffer sizes, or "
    "spread the heavy copy sets across more hosts.",
)
_rule(
    "M802", "slab-payload-mismatch", Severity.WARNING, "memory",
    "A stream's declared buffer size falls just below the codec's "
    "shared-memory threshold: every payload is pickled inline through "
    "the bounded control queue instead of travelling as a shared-memory "
    "slab, so the queue pipe carries near-slab-sized byte strings.",
    "Lower BufferCodec.shm_threshold below the declared buffer size, or "
    "batch payloads into larger slabs that cross the threshold.",
)
_rule(
    "M803", "tile-fanin-burst", Severity.WARNING, "memory",
    "At the end-of-work phase boundary every producer copy flushes one "
    "fragment per tile; the bound of fragments converging on the "
    "busiest tile owner exceeds its copy-set queue, so producers "
    "serialise on blocking puts exactly at the merge barrier.",
    "Raise queue_capacity, spread tiles over more owners, or reduce "
    "producer copies feeding the tile-mapped merge.",
)
_rule(
    "M804", "dtype-chain-conflict", Severity.WARNING, "memory",
    "Propagating declared payload dtypes through pass-through filters "
    "reaches a consumer whose declared input dtype differs: the "
    "mismatch B501 cannot see locally exists across the chain.",
    "Align the declared dtypes along the chain, or declare the "
    "converting filter's output_dtype explicitly.",
)

# -- F9xx: flow-control protocol model checking (deep pass 3) ----------------
_rule(
    "F901", "protocol-deadlock", Severity.ERROR, "protocol",
    "Bounded exploration of the credit/ack/close protocol reached a "
    "state where no copy set can make progress: a cycle of blocking "
    "sends and unconsumed queues wedges the pipeline before end-of-work "
    "can propagate.",
    "Break the blocking cycle shown in the event trace (reorder the "
    "graph, raise queue capacity, or unblock the stalled consumer).",
)
_rule(
    "F902", "dd-credit-deadlock", Severity.ERROR, "protocol",
    "A demand-driven (or rate-based) sliding window wedges: a producer "
    "sits on a full window whose acks can never arrive because the "
    "consumer is itself blocked sending — a credit cycle, typically "
    "through a feedback edge into a tile-routed merge.",
    "Remove the feedback edge (filter graphs must be DAGs), or widen "
    "the window / queue so the ack cycle cannot close.",
)
_rule(
    "F903", "eow-delivery-wedge", Severity.ERROR, "protocol",
    "End-of-work delivery is not guaranteed: a producer finishes its "
    "work but can never deliver its end-of-work marker (the consumer "
    "queue stays full or the consumer never drains it), so downstream "
    "phase boundaries wait forever — the close-while-busy wedge.",
    "Ensure every consumer keeps draining until all markers arrive "
    "(crash supervision must drain or fail the queue, not abandon it).",
)
_rule(
    "F904", "state-space-truncated", Severity.INFO, "protocol",
    "The protocol model checker hit its state or size budget before "
    "exhausting the reachable state space; deadlock-freedom is verified "
    "only up to the explored bound.",
    "Re-run repro.analysis.protocol.check_protocol directly with a "
    "higher max_states for a complete proof.",
)
