"""Diagnostic objects: the output format of every analysis pass.

Both passes — the pipeline verifier (:mod:`repro.analysis.pipeline`) and
the filter-code lint (:mod:`repro.analysis.filtercode`) — report structured
:class:`Diagnostic` records instead of raising on the first problem, so a
single run surfaces every issue with its rule id, severity and fix hint.
A :class:`DiagnosticReport` aggregates them and provides the severity
queries the engines and the CLI gate on.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import AnalysisError, GraphError, PlacementError, ReproError

__all__ = ["Severity", "Diagnostic", "DiagnosticReport"]


class Severity(enum.IntEnum):
    """How bad one diagnostic is; ordering is by badness."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name, as used in JSON output and CLI filters."""
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a case-insensitive severity name."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{[s.label for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis rule.

    Parameters
    ----------
    rule:
        Rule id from the catalogue (e.g. ``"G102"``).
    name:
        The rule's kebab-case slug (e.g. ``"cycle"``).
    severity:
        :class:`Severity` of this particular finding (a rule may demote or
        promote its default, e.g. unpicklable state is an ERROR only when
        the pipeline targets the process engine).
    subject:
        What the finding is about: a filter, stream or host name for
        pipeline rules; ``Class.method`` for code rules.
    message:
        Human-readable statement of the problem.
    hint:
        Concrete fix suggestion.
    location:
        ``file:line`` for code-lint findings; empty for pipeline findings.
    """

    rule: str
    name: str
    severity: Severity
    subject: str
    message: str
    hint: str = ""
    location: str = ""

    def to_dict(self) -> dict[str, str]:
        """JSON-ready representation (all values are strings)."""
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity.label,
            "subject": self.subject,
            "message": self.message,
            "hint": self.hint,
            "location": self.location,
        }

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return (
            f"{self.severity.label.upper():7s} {self.rule} "
            f"({self.name}) {self.subject}: {self.message}{where}"
        )


#: Rule-id prefix -> exception type raised for ERROR diagnostics of that
#: scope, preserving the pre-analysis API (``FilterGraph.validate`` raised
#: GraphError, ``Placement.validate`` raised PlacementError).
_SCOPE_EXCEPTIONS: dict[str, type[ReproError]] = {
    "G": GraphError,
    "P": PlacementError,
}


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics from one analysis run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def append(self, diagnostic: Diagnostic) -> None:
        """Add one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Add many findings."""
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        """ERROR-level findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """WARNING-level findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def max_severity(self) -> Severity | None:
        """The worst severity present, or ``None`` when the report is clean."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def by_rule(self, rule: str) -> list[Diagnostic]:
        """All findings of one rule id."""
        return [d for d in self.diagnostics if d.rule == rule]

    def rule_ids(self) -> set[str]:
        """The distinct rule ids that fired."""
        return {d.rule for d in self.diagnostics}

    def raise_errors(self) -> None:
        """Raise if the report carries ERROR diagnostics.

        The exception type follows the first error's rule scope —
        :class:`~repro.errors.GraphError` for ``G*`` rules,
        :class:`~repro.errors.PlacementError` for ``P*`` rules,
        :class:`~repro.errors.AnalysisError` otherwise — so existing
        callers that caught the specific types keep working.  The message
        is the first error's message, followed by a count of any others.
        """
        errors = self.errors
        if not errors:
            return
        first = errors[0]
        exc_type = _SCOPE_EXCEPTIONS.get(first.rule[:1], AnalysisError)
        message = first.message
        if len(errors) > 1:
            message += f" (+{len(errors) - 1} more ERROR diagnostics)"
        if exc_type is AnalysisError:
            raise AnalysisError(f"[{first.rule}] {message}", report=self)
        raise exc_type(message)
