"""Pass 2: AST lint of :class:`~repro.core.filter.Filter` subclasses.

Pure stdlib-``ast`` analysis — nothing is imported or executed, so the
lint runs safely over ``examples/*.py`` pipeline definitions in CI.  A
class is considered filter code when any base name is ``Filter`` or ends
with ``Filter`` (covers ``real.ReadFilter``-style attribute bases).

Rules (``C6xx`` in the catalogue):

- **C601** payload mutation after ``ctx.write(...)`` in the same callback;
- **C602** a filter that overrides ``handle``/``process`` but never writes
  downstream nor exposes ``result()`` (nothing ever reaches consumers
  beyond the end-of-work marker);
- **C603** blocking calls (``time.sleep``, file/network I/O) inside the
  per-buffer ``handle``/``process`` callback;
- **C604** unpicklable state on ``self`` (lambdas, locks, open handles) —
  promoted from WARNING to ERROR when the pipeline targets the process
  engine, whose workers cross a fork/pickle boundary;
- **C605** accumulator attributes grown from ``handle``/``flush`` but
  never reset in ``init`` — stale state leaks across cycles when the
  instance is reused by ``run_cycles`` or a warm pool;
- **C606** a content-routed writer policy (``TileRouted`` subclass, or a
  class declaring ``content_routed = True``) whose ``route()`` override
  never reads its tags argument — the code-level twin of the graph-level
  Z404 mismatch: tile-tagged buffers get routed blindly.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from pathlib import Path
from typing import Any

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import RULES

__all__ = ["lint_source", "lint_file", "lint_class", "lint_graph_filters"]

#: Callback methods whose bodies are linted.
CALLBACK_METHODS = frozenset(
    {"init", "handle", "flush", "finalize", "process", "__init__"}
)

#: The per-buffer hot path: blocking calls here stall the whole copy set.
HOT_CALLBACKS = frozenset({"handle", "process"})

#: Dotted-name prefixes considered blocking in a per-buffer callback.
_BLOCKING_PREFIXES = (
    "time.sleep",
    "os.system",
    "os.popen",
    "subprocess.",
    "socket.",
    "requests.",
    "urllib.",
    "http.client.",
)

#: Bare call names considered blocking in a per-buffer callback.
_BLOCKING_NAMES = frozenset({"open", "input", "sleep"})

#: Container methods that grow state in place (C605 accumulation).
_ACCUMULATE_METHODS = frozenset({"append", "extend", "update", "add"})

#: Constructors whose results cannot cross a fork/pickle boundary.
_UNPICKLABLE_CALLS = (
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
    "open",
)


def _dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for an Attribute/Name chain, else an empty string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _root_name(node: ast.expr) -> str:
    """The leftmost Name of a Name/Attribute/Subscript chain, else ''."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_filter_class(node: ast.ClassDef) -> bool:
    """Heuristic: the class subclasses (something named like) Filter."""
    for base in node.bases:
        name = _dotted_name(base)
        short = name.rsplit(".", 1)[-1]
        if short == "Filter" or short.endswith("Filter"):
            return True
    return False


def _ordered_nodes(fn: ast.FunctionDef) -> list[ast.AST]:
    """Every node of a function body in source order."""
    nodes = [n for n in ast.walk(fn) if hasattr(n, "lineno")]
    nodes.sort(key=lambda n: (n.lineno, n.col_offset))
    return nodes


class _ClassLint:
    """Collects ``C6xx`` findings for one filter class definition."""

    def __init__(self, node: ast.ClassDef, filename: str, process_engine: bool) -> None:
        self.node = node
        self.filename = filename
        self.process_engine = process_engine
        self.findings: list[Diagnostic] = []

    def _loc(self, node: ast.AST) -> str:
        return f"{self.filename}:{getattr(node, 'lineno', self.node.lineno)}"

    def run(self) -> list[Diagnostic]:
        methods = {
            item.name: item
            for item in self.node.body
            if isinstance(item, ast.FunctionDef)
        }
        writes = False
        for name, fn in methods.items():
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Attribute
                ):
                    if sub.func.attr == "write":
                        writes = True
                    elif (
                        sub.func.attr in ("handle", "flush")
                        and _root_name(sub.func.value) == "self"
                    ):
                        writes = True  # delegation to an inner filter
            if name in CALLBACK_METHODS:
                self._check_mutation_after_send(name, fn)
            if name in HOT_CALLBACKS:
                self._check_blocking_calls(name, fn)
            self._check_unpicklable_state(name, fn)
        self._check_class_level_state()
        self._check_stale_cycle_state(methods)
        overrides_handle = bool(HOT_CALLBACKS & set(methods))
        if overrides_handle and not writes and "result" not in methods:
            self.findings.append(
                RULES["C602"].diagnostic(
                    self.node.name,
                    f"{self.node.name} overrides handle() but never calls "
                    f"ctx.write() and has no result(); downstream filters "
                    f"would only ever see its end-of-work marker",
                    location=self._loc(self.node),
                )
            )
        return self.findings

    # -- C601 ---------------------------------------------------------------
    def _check_mutation_after_send(self, method: str, fn: ast.FunctionDef) -> None:
        sent: dict[str, int] = {}  # name -> line of first write()
        for node in _ordered_nodes(fn):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and node.args
            ):
                name = _root_name(node.args[0])
                if name and name not in sent:
                    sent[name] = node.lineno
                continue
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, (ast.Subscript, ast.Attribute)):
                    continue  # rebinding a bare name is not a mutation
                name = _root_name(target)
                if name in sent and node.lineno > sent[name]:
                    self.findings.append(
                        RULES["C601"].diagnostic(
                            f"{self.node.name}.{method}",
                            f"{self.node.name}.{method} mutates {name!r} on "
                            f"line {node.lineno} after writing it downstream "
                            f"on line {sent[name]}",
                            location=self._loc(node),
                        )
                    )

    # -- C603 ---------------------------------------------------------------
    def _check_blocking_calls(self, method: str, fn: ast.FunctionDef) -> None:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if not name:
                continue
            blocking = name in _BLOCKING_NAMES or any(
                name == p or name.startswith(p) for p in _BLOCKING_PREFIXES
            )
            if blocking:
                self.findings.append(
                    RULES["C603"].diagnostic(
                        f"{self.node.name}.{method}",
                        f"{self.node.name}.{method} calls blocking "
                        f"{name}() in the per-buffer callback",
                        location=self._loc(node),
                    )
                )

    # -- C604 ---------------------------------------------------------------
    def _unpicklable_value(self, value: ast.expr) -> str:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            name = _dotted_name(value.func)
            short = name.rsplit(".", 1)[-1]
            if name in _UNPICKLABLE_CALLS or short in ("Lock", "RLock"):
                return f"{name}()"
        return ""

    def _check_unpicklable_state(self, method: str, fn: ast.FunctionDef) -> None:
        severity = Severity.ERROR if self.process_engine else None
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or node.value is None:
                continue
            what = self._unpicklable_value(node.value)
            if not what:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.findings.append(
                        RULES["C604"].diagnostic(
                            f"{self.node.name}.{method}",
                            f"{self.node.name}.{method} stores {what} on "
                            f"self.{target.attr}; it cannot cross the "
                            f"process engine's fork/pickle boundary",
                            severity=severity,
                            location=self._loc(node),
                        )
                    )

    # -- C605 ---------------------------------------------------------------
    @staticmethod
    def _self_attr(node: ast.expr) -> str:
        """``x`` for a ``self.x`` expression, else an empty string."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return ""

    def _attrs_reset_in(self, fn: ast.FunctionDef) -> set[str]:
        """Attributes a method (re)binds or clears on ``self``."""
        reset: set[str] = set()
        for node in ast.walk(fn):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                attr = self._self_attr(target)
                if attr:
                    reset.add(attr)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "clear"
            ):
                attr = self._self_attr(node.func.value)
                if attr:
                    reset.add(attr)
        return reset

    def _check_stale_cycle_state(
        self, methods: dict[str, ast.FunctionDef]
    ) -> None:
        """C605: accumulators grown per buffer but never re-armed per cycle.

        ``init`` runs once per cycle; ``__init__`` once per copy lifetime.
        An attribute that only ever grows from ``handle``/``flush`` carries
        the previous unit of work into the next whenever the instance is
        reused (``run_cycles``, warm pools).  Resets performed by helper
        methods the ``init`` body calls on ``self`` are honoured one level
        deep (the ``def init(self, ctx): self._reset()`` idiom).
        """
        grown: dict[str, tuple[str, ast.AST]] = {}
        for name in ("handle", "process", "flush"):
            fn = methods.get(name)
            if fn is None:
                continue
            for node in ast.walk(fn):
                attr = ""
                if isinstance(node, ast.AugAssign):
                    attr = self._self_attr(node.target)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ACCUMULATE_METHODS
                ):
                    attr = self._self_attr(node.func.value)
                if attr and attr not in grown:
                    grown[attr] = (name, node)
        if not grown:
            return
        reset: set[str] = set()
        init_fn = methods.get("init")
        if init_fn is not None:
            reset |= self._attrs_reset_in(init_fn)
            for node in ast.walk(init_fn):
                if isinstance(node, ast.Call):
                    helper = methods.get(self._self_attr(node.func))
                    if helper is not None:
                        reset |= self._attrs_reset_in(helper)
        for attr, (method, node) in sorted(grown.items()):
            if attr in reset:
                continue
            self.findings.append(
                RULES["C605"].diagnostic(
                    f"{self.node.name}.{attr}",
                    f"{self.node.name}.{method} grows self.{attr} but "
                    f"init() never resets it; the accumulator carries the "
                    f"previous cycle's data when the copy is reused "
                    f"(run_cycles, warm pools)",
                    location=self._loc(node),
                )
            )

    def _check_class_level_state(self) -> None:
        severity = Severity.ERROR if self.process_engine else None
        for item in self.node.body:
            if isinstance(item, ast.Assign) and isinstance(
                item.value, ast.Lambda
            ):
                for target in item.targets:
                    if isinstance(target, ast.Name):
                        self.findings.append(
                            RULES["C604"].diagnostic(
                                f"{self.node.name}.{target.id}",
                                f"{self.node.name}.{target.id} is a "
                                f"class-level lambda; it cannot cross the "
                                f"process engine's fork/pickle boundary",
                                severity=severity,
                                location=self._loc(item),
                            )
                        )


def _is_content_routed_policy(node: ast.ClassDef) -> bool:
    """Heuristic: the class is (or declares itself) a content-routed policy."""
    for base in node.bases:
        short = _dotted_name(base).rsplit(".", 1)[-1]
        if short == "TileRouted" or short.endswith("TileRouted"):
            return True
    for item in node.body:
        targets: list[ast.expr] = []
        if isinstance(item, ast.Assign):
            targets = list(item.targets)
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets = [item.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "content_routed" for t in targets
        ):
            continue
        value = item.value
        if isinstance(value, ast.Constant) and value.value is True:
            return True
    return False


def _lint_route_override(
    node: ast.ClassDef, filename: str
) -> list[Diagnostic]:
    """C606: a content-routed ``route()`` that never reads its tags."""
    if not _is_content_routed_policy(node):
        return []
    route = next(
        (
            item
            for item in node.body
            if isinstance(item, ast.FunctionDef) and item.name == "route"
        ),
        None,
    )
    if route is None:
        return []
    params = [a.arg for a in route.args.args if a.arg != "self"]
    if not params:
        return []
    tags_param = params[0]
    for sub in ast.walk(route):
        if (
            isinstance(sub, ast.Name)
            and sub.id == tags_param
            and isinstance(sub.ctx, ast.Load)
        ):
            return []
    return [
        RULES["C606"].diagnostic(
            f"{node.name}.route",
            f"{node.name}.route() never reads its {tags_param!r} argument; "
            f"a content-routed policy that ignores the tile_owner tag "
            f"routes tile fragments blindly",
            location=f"{filename}:{route.lineno}",
        )
    ]


def lint_source(
    source: str,
    filename: str = "<string>",
    process_engine: bool = False,
) -> list[Diagnostic]:
    """Lint every filter class defined in ``source`` (no imports, pure AST)."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            RULES["C600"].diagnostic(
                filename,
                f"cannot parse {filename}: {exc.msg}",
                location=f"{filename}:{exc.lineno or 0}",
            )
        ]
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if _is_filter_class(node):
                findings.extend(_ClassLint(node, filename, process_engine).run())
            findings.extend(_lint_route_override(node, filename))
    findings.sort(key=lambda d: (d.location, d.rule))
    return findings


def lint_file(
    path: str | Path, process_engine: bool = False
) -> list[Diagnostic]:
    """Lint one Python file without importing it."""
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"),
        filename=str(path),
        process_engine=process_engine,
    )


def lint_class(cls: type, process_engine: bool = False) -> list[Diagnostic]:
    """Lint one live filter class via its source (``inspect.getsource``)."""
    try:
        source = textwrap.dedent(inspect.getsource(cls))
        filename = inspect.getsourcefile(cls) or "<class>"
    except (OSError, TypeError):
        return []  # dynamically built classes have no linteable source
    tree = ast.parse(source)
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.__name__:
            findings.extend(_ClassLint(node, filename, process_engine).run())
            break
    return findings


def lint_graph_filters(
    graph: Any, process_engine: bool = False
) -> list[Diagnostic]:
    """Lint the filter classes a graph's factories directly expose.

    Only factories that *are* classes can be linted statically; closure
    factories (the common idiom) are covered by linting their defining
    module with :func:`lint_file`.
    """
    findings: list[Diagnostic] = []
    for spec in graph.filters.values():
        factory = spec.factory
        if isinstance(factory, type):
            findings.extend(lint_class(factory, process_engine=process_engine))
    return findings
