"""Pass 1: the static pipeline verifier.

Checks a ``(FilterGraph, Placement, writer policies, cluster hosts,
BufferCodec)`` configuration *before* any engine instantiates a copy, and
reports every violation as a structured :class:`~repro.analysis.Diagnostic`
(TPIE-style "compile time" validation of the full pipeline graph).  The
individual passes are exposed for the thin ``validate()`` compatibility
wrappers on :class:`~repro.core.graph.FilterGraph` and
:class:`~repro.core.placement.Placement`; engines call
:func:`verify_pipeline` which runs everything applicable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import TYPE_CHECKING

import networkx as nx
import numpy as np

from repro.analysis.dataflow import verify_dataflow
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from repro.analysis.effects import verify_effects
from repro.analysis.protocol import verify_protocol
from repro.analysis.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.buffer import BufferCodec
    from repro.core.graph import FilterGraph
    from repro.core.placement import Placement
    from repro.core.policies import WriterPolicy

__all__ = [
    "verify_graph",
    "verify_placement",
    "verify_flow",
    "verify_buffers",
    "verify_pipeline",
]


def _structure(graph: "FilterGraph") -> nx.DiGraph:
    """The stream graph restricted to filters that actually exist."""
    dag = nx.DiGraph()
    dag.add_nodes_from(graph.filters)
    for stream in graph.streams.values():
        if stream.src in graph.filters and stream.dst in graph.filters:
            dag.add_edge(stream.src, stream.dst)
    return dag


def verify_graph(graph: "FilterGraph") -> list[Diagnostic]:
    """Run the ``G1xx`` graph-structure rules."""
    out: list[Diagnostic] = []
    if not graph.filters:
        out.append(RULES["G101"].diagnostic("graph", "graph has no filters"))
        return out

    # G106 dangling streams (manual spec-table mutation).
    for stream in graph.streams.values():
        for endpoint in (stream.src, stream.dst):
            if endpoint not in graph.filters:
                out.append(
                    RULES["G106"].diagnostic(
                        stream.name,
                        f"stream {stream.name!r} references unknown filter "
                        f"{endpoint!r}",
                    )
                )

    dag = _structure(graph)
    if not nx.is_directed_acyclic_graph(dag):
        cycle = nx.find_cycle(dag)
        out.append(
            RULES["G102"].diagnostic(
                "graph", f"graph has a cycle: {cycle}"
            )
        )

    for spec in graph.filters.values():
        if not spec.inputs and not spec.is_source:
            out.append(
                RULES["G103"].diagnostic(
                    spec.name,
                    f"filter {spec.name!r} has no inputs but is not marked "
                    f"is_source",
                )
            )
        if spec.is_source and spec.inputs:
            out.append(
                RULES["G104"].diagnostic(
                    spec.name,
                    f"source filter {spec.name!r} must not have inputs",
                )
            )

    sources = {
        spec.name
        for spec in graph.filters.values()
        if spec.is_source and not spec.inputs
    }
    if not sources:
        out.append(
            RULES["G105"].diagnostic(
                "graph",
                "graph has no source filter; no data can enter the pipeline",
            )
        )
    else:
        reachable = set(sources)
        for name in sources:
            reachable |= nx.descendants(dag, name)
        for name in graph.filters:
            if name not in reachable:
                out.append(
                    RULES["G107"].diagnostic(
                        name,
                        f"filter {name!r} is unreachable from every source",
                    )
                )

    # Z402 tile maps must be valid owner-assigned partitions.
    for spec in graph.filters.values():
        tile_map = getattr(spec, "tile_map", None)
        if tile_map is None:
            continue
        for problem in tile_map.problems():
            out.append(
                RULES["Z402"].diagnostic(
                    spec.name,
                    f"filter {spec.name!r} tile map: {problem}",
                )
            )

    seen_pairs: dict[tuple[str, str], int] = {}
    for stream in graph.streams.values():
        pair = (stream.src, stream.dst)
        seen_pairs[pair] = seen_pairs.get(pair, 0) + 1
    for (src, dst), count in sorted(seen_pairs.items()):
        if count > 1:
            out.append(
                RULES["G108"].diagnostic(
                    f"{src}->{dst}",
                    f"filters {src!r} and {dst!r} are connected by {count} "
                    f"parallel streams",
                )
            )
    return out


def verify_placement(
    graph: "FilterGraph",
    placement: "Placement",
    known_hosts: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Run the ``P2xx`` placement rules.

    ``known_hosts`` is the cluster's host set; when ``None`` the host
    check (P203) is skipped — the real engines treat host names as labels
    and accept any.
    """
    out: list[Diagnostic] = []
    known = None if known_hosts is None else set(known_hosts)
    placed = {name: placement.copysets(name) for name in placement.placed_filters()}

    for name in graph.filters:
        if name not in placed:
            out.append(
                RULES["P201"].diagnostic(
                    name, f"filter {name!r} has no placement"
                )
            )
    for name, copysets in placed.items():
        if name not in graph.filters:
            out.append(
                RULES["P202"].diagnostic(
                    name, f"placed filter {name!r} is not in the graph"
                )
            )
        hosts_seen: set[str] = set()
        for cs in copysets:
            if known is not None and cs.host not in known:
                out.append(
                    RULES["P203"].diagnostic(
                        name,
                        f"filter {name!r} placed on unknown host {cs.host!r}",
                    )
                )
            if cs.host in hosts_seen:
                out.append(
                    RULES["P205"].diagnostic(
                        name,
                        f"filter {name!r} has multiple copy sets on host "
                        f"{cs.host!r}",
                    )
                )
            hosts_seen.add(cs.host)
            if cs.copies < 1:
                out.append(
                    RULES["P206"].diagnostic(
                        name,
                        f"filter {name!r} copy set on {cs.host!r} declares "
                        f"{cs.copies} copies",
                    )
                )
    # Z403 tile-mapped filters need one single-copy set per owner, in
    # owner order (the tile->owner mapping indexes copy sets positionally).
    for spec in graph.filters.values():
        tile_map = getattr(spec, "tile_map", None)
        if tile_map is None or spec.name not in placed:
            continue
        copysets = placed[spec.name]
        owners = tile_map.n_owners
        if len(copysets) != owners:
            out.append(
                RULES["Z403"].diagnostic(
                    spec.name,
                    f"filter {spec.name!r} tile map names {owners} owners "
                    f"but the placement has {len(copysets)} copy sets",
                )
            )
        for cs in copysets:
            if cs.copies != 1:
                out.append(
                    RULES["Z403"].diagnostic(
                        spec.name,
                        f"filter {spec.name!r} copy set on {cs.host!r} runs "
                        f"{cs.copies} copies; tile owners must be single "
                        f"copies (copies on one host share a queue, so the "
                        f"tile->owner mapping cannot address them)",
                    )
                )
    for spec in graph.filters.values():
        if spec.outputs or spec.name not in placed:
            continue
        total = sum(cs.copies for cs in placed[spec.name])
        if total > 1:
            out.append(
                RULES["P204"].diagnostic(
                    spec.name,
                    f"sink filter {spec.name!r} runs {total} transparent "
                    f"copies; engines return one independent result per copy",
                )
            )
    return out


def verify_flow(
    graph: "FilterGraph",
    placement: "Placement",
    policy_for: "Callable[[str], Callable[[], WriterPolicy]]",
    queue_capacity: int,
) -> list[Diagnostic]:
    """Run the ``W3xx`` flow-control and ``Z4xx`` phase rules.

    ``policy_for`` maps a stream name to its policy *factory* (exactly
    what the engines hold); one probe instance is built per stream to
    introspect its window, never bound or used for routing.
    """
    out: list[Diagnostic] = []
    placed = set(placement.placed_filters())
    for stream in graph.streams.values():
        if stream.dst not in placed or stream.dst not in graph.filters:
            continue
        copysets = placement.copysets(stream.dst)
        try:
            policy = policy_for(stream.name)()
        except Exception:  # pragma: no cover - user factory failure
            continue
        described = policy.describe()
        window = described.get("window")
        if (
            described.get("name") == "WeightedRoundRobin"
            and copysets
            and all(cs.copies == 1 for cs in copysets)
        ):
            out.append(
                RULES["W301"].diagnostic(
                    stream.name,
                    f"WRR on stream {stream.name!r}: every consumer copy set "
                    f"runs 1 copy, so weighted cycling degenerates to RR",
                )
            )
        # Z404/Z405 content routing and tile partitioning come in pairs.
        dst_spec = graph.filters[stream.dst]
        content_routed = bool(described.get("content_routed"))
        dst_tile_map = getattr(dst_spec, "tile_map", None)
        if dst_tile_map is not None and not content_routed:
            out.append(
                RULES["Z404"].diagnostic(
                    stream.name,
                    f"stream {stream.name!r}: consumer {stream.dst!r} is "
                    f"tile-mapped but policy "
                    f"{described.get('name', '?')} is not content-routed; "
                    f"merge copies would receive tiles they do not own",
                )
            )
        if content_routed and dst_tile_map is None:
            out.append(
                RULES["Z404"].diagnostic(
                    stream.name,
                    f"stream {stream.name!r}: policy "
                    f"{described.get('name', '?')} routes by content but "
                    f"consumer {stream.dst!r} declares no tile_map",
                )
            )
        if content_routed and not dst_spec.phase_synchronised:
            out.append(
                RULES["Z405"].diagnostic(
                    stream.name,
                    f"stream {stream.name!r}: content-routed policy feeds "
                    f"{stream.dst!r}, which is not phase-synchronised and "
                    f"may stream torn per-tile state downstream",
                )
            )
        if isinstance(window, int):
            if window > queue_capacity:
                out.append(
                    RULES["W302"].diagnostic(
                        stream.name,
                        f"stream {stream.name!r}: policy window {window} "
                        f"exceeds queue_capacity {queue_capacity}; the "
                        f"sliding window can never fill",
                    )
                )
            if window < 2 and len(copysets) >= 1:
                out.append(
                    RULES["W303"].diagnostic(
                        stream.name,
                        f"stream {stream.name!r}: window {window} serialises "
                        f"every send behind one ack round trip",
                    )
                )
    for spec in graph.filters.values():
        if spec.phase_synchronised and len(spec.inputs) > 1:
            out.append(
                RULES["Z401"].diagnostic(
                    spec.name,
                    f"phase-synchronised filter {spec.name!r} has "
                    f"{len(spec.inputs)} input streams (unsynchronised "
                    f"fan-in); its phase boundary waits on every stream's "
                    f"end-of-work",
                )
            )
    return out


def verify_buffers(
    graph: "FilterGraph", codec: "BufferCodec | None" = None
) -> list[Diagnostic]:
    """Run the ``B5xx`` buffer/dtype rules (codec rules only with a codec)."""
    out: list[Diagnostic] = []

    def parse_dtype(name: str, text: str) -> "np.dtype | None":
        try:
            return np.dtype(text)
        except TypeError:
            out.append(
                RULES["B501"].diagnostic(
                    name,
                    f"filter {name!r} declares invalid payload dtype {text!r}",
                )
            )
            return None

    for stream in graph.streams.values():
        src = graph.filters.get(stream.src)
        dst = graph.filters.get(stream.dst)
        if src is None or dst is None:
            continue
        if src.output_dtype is not None and dst.input_dtype is not None:
            out_dtype = parse_dtype(src.name, src.output_dtype)
            in_dtype = parse_dtype(dst.name, dst.input_dtype)
            if (
                out_dtype is not None
                and in_dtype is not None
                and out_dtype != in_dtype
            ):
                out.append(
                    RULES["B501"].diagnostic(
                        stream.name,
                        f"stream {stream.name!r}: producer {src.name!r} emits "
                        f"dtype {out_dtype} but consumer {dst.name!r} expects "
                        f"{in_dtype}",
                    )
                )
        if (
            codec is not None
            and not codec.use_shared_memory
            and src.output_nbytes is not None
            and src.output_nbytes >= codec.shm_threshold
        ):
            out.append(
                RULES["B502"].diagnostic(
                    stream.name,
                    f"stream {stream.name!r}: ~{src.output_nbytes} B buffers "
                    f"meet the codec's {codec.shm_threshold} B shared-memory "
                    f"threshold, but the codec has shared memory disabled",
                )
            )
    return out


def verify_pipeline(
    graph: "FilterGraph",
    placement: "Placement | None" = None,
    known_hosts: Iterable[str] | None = None,
    policy_for: "Callable[[str], Callable[[], WriterPolicy]] | None" = None,
    queue_capacity: int = 8,
    codec: "BufferCodec | None" = None,
    deep: bool = False,
    host_memory: Mapping[str, int] | None = None,
    protocol_max_states: int = 4_000,
) -> DiagnosticReport:
    """Run every applicable pipeline rule and return the full report.

    ``graph`` rules always run; placement and flow rules need a
    ``placement`` (and flow rules a ``policy_for`` resolver); the codec
    rules need a ``codec``.  Nothing raises — gate on
    :meth:`DiagnosticReport.raise_errors` /
    :attr:`DiagnosticReport.errors`.

    With ``deep=True`` the three deep passes run as well: effect/purity
    inference (``E7xx``), symbolic resource dataflow (``M8xx``, host
    budgets via ``host_memory``) and the flow-control protocol model
    checker (``F9xx``).  The protocol pass only runs when the shallow
    rules found no errors — a structurally broken pipeline wedges for
    reasons the G/P/Z rules already name — and is bounded by
    ``protocol_max_states`` so it stays cheap at engine construction.
    """
    report = DiagnosticReport()
    report.extend(verify_graph(graph))
    if placement is not None:
        report.extend(verify_placement(graph, placement, known_hosts))
        if policy_for is not None:
            report.extend(
                verify_flow(graph, placement, policy_for, queue_capacity)
            )
    report.extend(verify_buffers(graph, codec))
    if deep:
        report.extend(verify_effects(graph))
        report.extend(
            verify_dataflow(
                graph, placement, policy_for, queue_capacity, codec, host_memory
            )
        )
        shallow_clean = not any(
            d.severity >= Severity.ERROR for d in report.diagnostics
        )
        if shallow_clean:
            report.extend(
                verify_protocol(
                    graph,
                    placement,
                    policy_for,
                    queue_capacity,
                    max_states=protocol_max_states,
                )
            )
    # Deterministic presentation: errors first, then by rule id/subject.
    report.diagnostics.sort(
        key=lambda d: (-int(d.severity), d.rule, d.subject, d.message)
    )
    return report
