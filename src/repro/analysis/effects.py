"""Deep pass 1: effect/purity inference over filter classes.

Classifies every filter as ``PURE`` / ``STATEFUL`` / ``IO`` /
``NONDETERMINISTIC`` from the AST of its class (attribute writes outside
``__init__``, random/time use, file/socket/dataset access, mutation of
input buffers), checks declarations (``FilterSpec.effects``) against the
inference, rolls summaries up to subgraphs and exposes
:func:`certify_memoisable` — the purity gate a result cache needs before
it may memoise a subgraph's output (ROADMAP item 2).

Inference is deliberately conservative: a filter is only ``PURE`` when
nothing in its class suggests otherwise, and an unresolvable factory
yields *unknown* (``EffectSummary.effect is None``), which certification
treats as impure.  ``__init__`` is exempt from the stateful check —
constructor configuration happens once per copy, before any data — but
``init()`` is not: per-cycle accumulators are exactly the state that
makes replay unsound.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING, Any

import networkx as nx

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.analysis.rules import RULES
from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.graph import FilterGraph, FilterSpec

__all__ = [
    "Effect",
    "EffectSummary",
    "MemoCertificate",
    "EFFECT_NAMES",
    "infer_class_effects",
    "spec_effects",
    "graph_effects",
    "subgraph_effect",
    "certify_memoisable",
    "verify_effects",
]


class Effect(IntEnum):
    """Effects lattice; rollups take the maximum (worst) member."""

    PURE = 0
    STATEFUL = 1
    IO = 2
    NONDETERMINISTIC = 3

    @property
    def label(self) -> str:
        """Lower-case name, as used by ``FilterSpec.effects``."""
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Effect":
        """The effect named by ``text`` (``'pure'``, ``'io'``, ...)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown effects class {text!r}") from None


#: Valid ``FilterSpec.effects`` declarations.
EFFECT_NAMES: frozenset[str] = frozenset(e.label for e in Effect)


@dataclass(frozen=True)
class EffectSummary:
    """The effects classification of one filter.

    ``effect is None`` means *unknown*: no declaration and no resolvable
    class to infer from.  ``source`` records where the classification
    came from: ``"declared"`` (FilterSpec.effects), ``"inferred"`` (class
    AST), ``"assumed"`` (source filters with nothing else to go on are
    assumed at least IO) or ``"unknown"``.
    """

    effect: Effect | None
    source: str
    reasons: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        """Human-readable effect name (``'unknown'`` when unresolved)."""
        return self.effect.label if self.effect is not None else "unknown"


@dataclass
class MemoCertificate:
    """Result of :func:`certify_memoisable`.

    ``ok`` is True only when every member filter is provably PURE and the
    subgraph is convex; ``report`` carries the E7xx findings that justify
    a rejection (empty on success).
    """

    ok: bool
    subgraph: tuple[str, ...]
    effect: Effect | None
    members: dict[str, EffectSummary] = field(default_factory=dict)
    report: DiagnosticReport = field(default_factory=DiagnosticReport)


# -- class-level inference ---------------------------------------------------

#: Lifecycle callbacks examined by the inference.
_LIFECYCLE = frozenset({"__init__", "init", "handle", "process", "flush", "finalize"})

#: Dotted-call prefixes that mean blocking I/O wherever they appear.
_IO_CALL_PREFIXES: tuple[str, ...] = (
    "open",
    "socket.",
    "requests.",
    "urllib.",
    "http.",
    "subprocess.",
    "os.system",
    "os.popen",
    "os.read",
    "os.write",
    "os.remove",
    "os.makedirs",
    "shutil.",
    "np.load",
    "np.save",
    "numpy.load",
    "numpy.save",
    "pickle.load",
    "pickle.dump",
)

#: Attribute-chain segments that mark a self attribute as an I/O handle
#: (``self.dataset.chunk_field(...)`` reads from external storage).
_IO_ATTR_HINTS: frozenset[str] = frozenset(
    {
        "dataset",
        "storage",
        "store",
        "stores",
        "reader",
        "file",
        "files",
        "fh",
        "db",
        "conn",
        "client",
        "sock",
        "socket",
    }
)

#: Dotted-call prefixes that mean nondeterministic input.
_NONDET_CALL_PREFIXES: tuple[str, ...] = (
    "random.",
    "np.random.",
    "numpy.random.",
    "secrets.",
    "uuid.uuid",
    "os.urandom",
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.time_ns",
)


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` as a string for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _target_root(node: ast.AST) -> ast.AST:
    """The innermost value of an assignment target chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


def _is_self_write(target: ast.AST) -> bool:
    """True when an assignment target is an attribute/item of ``self``."""
    if not isinstance(target, (ast.Attribute, ast.Subscript)):
        return False
    root = _target_root(target)
    return isinstance(root, ast.Name) and root.id == "self"


class _MethodScan(ast.NodeVisitor):
    """Collect effect evidence from one method body."""

    def __init__(self, method: str, params: frozenset[str]) -> None:
        self.method = method
        self.params = params
        self.reasons: dict[Effect, list[str]] = {
            Effect.STATEFUL: [],
            Effect.IO: [],
            Effect.NONDETERMINISTIC: [],
        }

    def _note(self, effect: Effect, text: str) -> None:
        self.reasons[effect].append(f"{self.method}(): {text}")

    def _scan_targets(self, targets: Iterable[ast.AST]) -> None:
        if self.method == "__init__":
            return  # constructor configuration is not per-cycle state
        for target in targets:
            if _is_self_write(target):
                self._note(
                    Effect.STATEFUL, f"writes {_dotted(target) or 'self attribute'}"
                )
            else:
                root = _target_root(target)
                if (
                    isinstance(target, (ast.Attribute, ast.Subscript))
                    and isinstance(root, ast.Name)
                    and root.id in self.params
                ):
                    self._note(
                        Effect.STATEFUL,
                        f"mutates its argument {root.id!r} (escaping mutation)",
                    )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._scan_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._scan_targets([node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._scan_targets([node.target])
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # A discarded call through a self attribute chain mutates that
        # state for its effect (self._zbuf.rasterize(...)).
        if self.method != "__init__" and isinstance(node.value, ast.Call):
            dotted = _dotted(node.value.func)
            if dotted and dotted.startswith("self."):
                self._note(Effect.STATEFUL, f"calls {dotted}() for effect")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            if dotted == "open" or any(
                dotted == p.rstrip(".") or dotted.startswith(p)
                for p in _IO_CALL_PREFIXES
            ):
                self._note(Effect.IO, f"calls {dotted}()")
            if any(
                dotted == p.rstrip(".") or dotted.startswith(p)
                for p in _NONDET_CALL_PREFIXES
            ):
                self._note(Effect.NONDETERMINISTIC, f"calls {dotted}()")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = _dotted(node)
        if isinstance(node.ctx, ast.Load) and dotted and dotted.startswith("self."):
            segments = dotted.split(".")[1:-1] or dotted.split(".")[1:]
            if any(seg.lstrip("_") in _IO_ATTR_HINTS for seg in segments):
                self._note(Effect.IO, f"reads through I/O handle {dotted}")
        self.generic_visit(node)


def _class_node(cls: type) -> ast.ClassDef | None:
    try:
        source = textwrap.dedent(inspect.getsource(cls))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            return node
    return None


_CLASS_CACHE: dict[type, EffectSummary] = {}


def infer_class_effects(cls: type) -> EffectSummary:
    """Infer the effects class of a filter class from its AST.

    Walks the class **and its base classes** (a raster filter inherits
    its camera latch from ``_RasterBase``); evidence accumulates and the
    result is the worst effect found.  Unreadable source yields unknown.
    """
    cached = _CLASS_CACHE.get(cls)
    if cached is not None:
        return cached
    reasons: dict[Effect, list[str]] = {
        Effect.STATEFUL: [],
        Effect.IO: [],
        Effect.NONDETERMINISTIC: [],
    }
    saw_source = False
    for klass in cls.__mro__:
        if klass is object or klass.__module__ in ("repro.core.filter",):
            continue
        node = _class_node(klass)
        if node is None:
            continue
        saw_source = True
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = frozenset(
                a.arg for a in item.args.args if a.arg not in ("self", "ctx")
            )
            scan = _MethodScan(item.name, params)
            for stmt in item.body:
                scan.visit(stmt)
            for effect, found in scan.reasons.items():
                reasons[effect].extend(found)
    if not saw_source:
        summary = EffectSummary(None, "unknown", ("class source unavailable",))
    else:
        effect = Effect.PURE
        collected: list[str] = []
        for candidate in (Effect.STATEFUL, Effect.IO, Effect.NONDETERMINISTIC):
            if reasons[candidate]:
                effect = max(effect, candidate)
                collected.extend(reasons[candidate][:3])
        summary = EffectSummary(effect, "inferred", tuple(collected))
    _CLASS_CACHE[cls] = summary
    return summary


def _resolve_factory_class(factory: Any) -> type | None:
    """The filter class a factory builds, if statically resolvable.

    Handles direct class factories and the common closure idioms
    ``lambda: ExtractFilter(iso)`` / ``lambda: real.ExtractFilter(iso)``
    by scanning the code object's names against its globals and closure.
    """
    if isinstance(factory, type):
        return factory
    code = getattr(factory, "__code__", None)
    if code is None:
        func = getattr(factory, "func", None)  # functools.partial
        return _resolve_factory_class(func) if func is not None else None
    namespace: dict[str, Any] = dict(getattr(factory, "__globals__", {}))
    closure = getattr(factory, "__closure__", None)
    if closure:
        namespace.update(
            {
                name: cell.cell_contents
                for name, cell in zip(code.co_freevars, closure)
            }
        )
    names = list(code.co_names) + list(code.co_freevars)
    candidates: list[type] = []
    for name in names:
        obj = namespace.get(name)
        if isinstance(obj, type):
            candidates.append(obj)
        elif obj is not None and inspect.ismodule(obj):
            for attr in names:
                sub = getattr(obj, attr, None)
                if isinstance(sub, type):
                    candidates.append(sub)
    for candidate in candidates:
        if any(k.__name__.endswith("Filter") for k in candidate.__mro__):
            return candidate
    return candidates[0] if candidates else None


def spec_effects(spec: "FilterSpec") -> EffectSummary:
    """The effects classification of one filter spec.

    A valid declaration wins; otherwise the real ``factory`` (never the
    simulation cost model) is resolved and inferred.  Source filters
    with no declaration are at least IO — they produce data from the
    outside world.
    """
    if spec.effects is not None and spec.effects in EFFECT_NAMES:
        return EffectSummary(Effect.parse(spec.effects), "declared")
    cls = _resolve_factory_class(spec.factory) if spec.factory is not None else None
    if cls is None:
        if spec.is_source:
            return EffectSummary(
                Effect.IO, "assumed", ("source filters read external data",)
            )
        return EffectSummary(None, "unknown", ("factory is not resolvable",))
    inferred = infer_class_effects(cls)
    if spec.is_source and inferred.effect is not None:
        return EffectSummary(
            max(inferred.effect, Effect.IO),
            inferred.source,
            inferred.reasons + ("source filters read external data",),
        )
    return inferred


def graph_effects(graph: "FilterGraph") -> dict[str, EffectSummary]:
    """Effect summaries for every filter in the graph, by name."""
    return {name: spec_effects(spec) for name, spec in graph.filters.items()}


def subgraph_effect(
    summaries: Mapping[str, EffectSummary], members: Iterable[str]
) -> Effect | None:
    """Roll member effects up to the subgraph (None if any is unknown)."""
    worst = Effect.PURE
    for name in members:
        summary = summaries[name]
        if summary.effect is None:
            return None
        worst = max(worst, summary.effect)
    return worst


def verify_effects(graph: "FilterGraph") -> list[Diagnostic]:
    """Run the graph-wide ``E7xx`` rules (E701 declaration, E702 nondet)."""
    out: list[Diagnostic] = []
    for name, spec in graph.filters.items():
        declared: Effect | None = None
        if spec.effects is not None and spec.effects in EFFECT_NAMES:
            declared = Effect.parse(spec.effects)
        cls = _resolve_factory_class(spec.factory) if spec.factory is not None else None
        inferred = infer_class_effects(cls) if cls is not None else None
        if (
            declared is not None
            and inferred is not None
            and inferred.effect is not None
            and declared < inferred.effect
        ):
            evidence = "; ".join(inferred.reasons[:3])
            out.append(
                RULES["E701"].diagnostic(
                    name,
                    f"filter {name!r} declares effects={declared.label!r} but "
                    f"its code infers {inferred.effect.label!r} ({evidence})",
                )
            )
        resolved = spec_effects(spec)
        if resolved.effect is Effect.NONDETERMINISTIC:
            evidence = "; ".join(resolved.reasons[:2]) or "declared"
            out.append(
                RULES["E702"].diagnostic(
                    name,
                    f"filter {name!r} is nondeterministic ({evidence}); "
                    f"replay cannot reproduce its output",
                )
            )
    return out


def certify_memoisable(
    graph: "FilterGraph", subgraph: Iterable[str]
) -> MemoCertificate:
    """Certify that a subgraph's output may be memoised.

    The certificate is granted only when (a) every member filter is
    provably ``PURE`` — declared or inferred — (b) no member is of
    unknown effect, and (c) the subgraph is *convex*: no path leaves the
    member set and re-enters it.  Rejections carry E703/E704/E705
    diagnostics naming the offending filters.
    """
    members = tuple(dict.fromkeys(subgraph))
    if not members:
        raise GraphError("cannot certify an empty subgraph")
    for name in members:
        if name not in graph.filters:
            raise GraphError(f"unknown filter {name!r} in subgraph")
    report = DiagnosticReport()
    summaries: dict[str, EffectSummary] = {}
    for name in members:
        summary = spec_effects(graph.filters[name])
        summaries[name] = summary
        if summary.effect is None:
            report.append(
                RULES["E704"].diagnostic(
                    name,
                    f"filter {name!r} has unknown effects "
                    f"({'; '.join(summary.reasons) or 'no evidence'}); "
                    f"the certifier must assume it is impure",
                )
            )
        elif summary.effect is not Effect.PURE:
            evidence = "; ".join(summary.reasons[:3]) or summary.source
            report.append(
                RULES["E703"].diagnostic(
                    name,
                    f"filter {name!r} is {summary.label} ({evidence}); "
                    f"memoising its output would replay stale state",
                )
            )

    # Convexity: an outside filter both reachable from the member set
    # and reaching back into it sits on a member-to-member path.
    dag = nx.DiGraph()
    dag.add_nodes_from(graph.filters)
    for stream in graph.streams.values():
        if stream.src in graph.filters and stream.dst in graph.filters:
            dag.add_edge(stream.src, stream.dst)
    member_set = set(members)
    downstream: set[str] = set()
    upstream: set[str] = set()
    for name in members:
        downstream |= nx.descendants(dag, name)
        upstream |= nx.ancestors(dag, name)
    straddlers = sorted((downstream & upstream) - member_set)
    if straddlers:
        report.append(
            RULES["E705"].diagnostic(
                ",".join(members),
                f"subgraph is not convex: {straddlers} sit on paths "
                f"between members but are not included",
            )
        )
    return MemoCertificate(
        ok=not report.diagnostics,
        subgraph=members,
        effect=subgraph_effect(summaries, members),
        members=summaries,
        report=report,
    )
