"""Deep pass 3: bounded model checking of the flow-control protocol.

Builds a small finite-state model of one concrete ``(graph, placement,
writer policies, phase-sync, EOW close)`` configuration and explores it
exhaustively (bounded BFS) to prove deadlock-freedom and guaranteed
end-of-work delivery, or to produce a counterexample event trace.

**The model.**  One state machine per *copy set* (copies on a host share
one bounded queue, so the copy set is the unit the protocol sees):

- modes ``RUN -> FLUSH -> CLOSING -> DONE`` mirror the engine lifecycle
  (consume, phase-boundary flush, per-stream EOW close, exit);
- one edge per (producer copy set, consumer copy set) pair of every
  stream, carrying ``queued`` data items, the EOW ``marker`` (markers
  occupy queue slots, exactly like the in-band ``_EOW`` sentinel of the
  process engine), ``pending`` produced-but-unsent items (a blocking
  ``ctx.write``: a node with pending sends can do nothing else) and the
  ``unacked`` count of a demand-driven/rate sliding window (acked on
  consumer dequeue, as the engines do);
- sources produce up to ``max_buffers`` items; consuming a buffer
  nondeterministically forwards 0 or 1 buffers per output stream;
  phase-synchronised filters emit only in ``FLUSH``, up to
  ``flush_burst`` buffers per output.

**The bounds.**  The state space is finite because production is bounded
(``max_buffers`` per source copy set — forwarding never increases the
number of live buffers) and every counter is capped by the queue
capacity or window.  Deadlock-freedom is therefore proved *up to the
production bound*; the protocol's control structure (windows, queues,
marker fan-in) does not change with more buffers, so a wedge reachable
at all is reachable within a small bound.  ``stalled`` names copy sets
whose copies never consume (a crashed or wedged consumer) — the
configuration the close-while-busy wedge needs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.graph import FilterGraph
    from repro.core.placement import Placement
    from repro.core.policies import WriterPolicy

__all__ = [
    "ProtocolModel",
    "ProtocolResult",
    "build_model",
    "check_model",
    "check_protocol",
    "verify_protocol",
]

_RUN, _FLUSH, _CLOSING, _DONE = 0, 1, 2, 3

#: (modes, budgets, flush_remaining, queued, markers, pending, unacked)
_State = tuple[
    tuple[int, ...],
    tuple[int, ...],
    tuple[int, ...],
    tuple[int, ...],
    tuple[int, ...],
    tuple[int, ...],
    tuple[int, ...],
]


@dataclass(frozen=True)
class _Node:
    index: int
    label: str
    is_source: bool
    phase_sync: bool
    stalled: bool
    in_edges: tuple[int, ...]
    out_edges: tuple[int, ...]


@dataclass(frozen=True)
class _Edge:
    index: int
    stream: str
    src: int
    dst: int
    #: Sliding-window size for needs-ack policies, else None.
    window: int | None


@dataclass
class ProtocolModel:
    """The finite-state model of one pipeline configuration."""

    nodes: list[_Node]
    edges: list[_Edge]
    queue_capacity: int
    max_buffers: int
    flush_burst: int

    @property
    def labels(self) -> tuple[str, ...]:
        """Copy-set labels, in node order."""
        return tuple(n.label for n in self.nodes)


@dataclass
class ProtocolResult:
    """Outcome of one bounded exploration."""

    #: True: no wedge reachable (within bounds).  False: counterexample
    #: found.  None: exploration truncated before any verdict.
    deadlock_free: bool | None
    #: Whether the reachable state space was fully explored.
    exhaustive: bool
    states_explored: int
    #: The offending event sequence (empty when deadlock_free).
    counterexample: tuple[str, ...] = ()
    #: Why each wedged copy set is stuck, for the terminal state.
    stuck: tuple[str, ...] = ()
    #: The F9xx rule id the counterexample maps to, if any.
    rule: str | None = None
    labels: tuple[str, ...] = ()


def build_model(
    graph: "FilterGraph",
    placement: "Placement | None" = None,
    policy_for: "Callable[[str], Callable[[], WriterPolicy]] | None" = None,
    queue_capacity: int = 8,
    stalled: Iterable[str] = (),
    window_overrides: Mapping[str, int] | None = None,
    max_buffers: int = 2,
    flush_burst: int = 1,
) -> ProtocolModel:
    """Build the protocol model of one configuration.

    Without a ``placement`` every filter is one copy set.  ``stalled``
    names copy-set labels (``filter@host``, or the bare filter name when
    unplaced) whose copies never consume.  ``window_overrides`` forces a
    sliding-window size per stream name — the hook the property tests
    use to inject degenerate (window, queue) pairs the real policy
    constructors refuse to build.
    """
    stalled_set = set(stalled)
    nodes: list[_Node] = []
    node_index: dict[str, list[int]] = {}
    in_edges: dict[int, list[int]] = {}
    out_edges: dict[int, list[int]] = {}

    def add_node(name: str, label: str, is_source: bool, phase: bool) -> int:
        index = len(nodes)
        nodes.append(
            _Node(
                index=index,
                label=label,
                is_source=is_source,
                phase_sync=phase,
                stalled=label in stalled_set,
                in_edges=(),
                out_edges=(),
            )
        )
        node_index.setdefault(name, []).append(index)
        in_edges[index] = []
        out_edges[index] = []
        return index

    for name, spec in graph.filters.items():
        is_source = spec.is_source or not spec.inputs
        if placement is not None and name in set(placement.placed_filters()):
            for cs in placement.copysets(name):
                add_node(
                    name, f"{name}@{cs.host}", is_source, spec.phase_synchronised
                )
        else:
            add_node(name, name, is_source, spec.phase_synchronised)

    edges: list[_Edge] = []
    for stream in graph.streams.values():
        if stream.src not in node_index or stream.dst not in node_index:
            continue
        window: int | None = None
        if window_overrides is not None and stream.name in window_overrides:
            window = window_overrides[stream.name]
        elif policy_for is not None:
            try:
                described = policy_for(stream.name)().describe()
            except Exception:  # pragma: no cover - user factory failure
                described = {}
            w = described.get("window")
            if isinstance(w, int) and described.get("needs_ack"):
                window = w
        for src in node_index[stream.src]:
            for dst in node_index[stream.dst]:
                index = len(edges)
                edges.append(
                    _Edge(
                        index=index,
                        stream=stream.name,
                        src=src,
                        dst=dst,
                        window=window,
                    )
                )
                out_edges[src].append(index)
                in_edges[dst].append(index)

    wired = [
        _Node(
            index=n.index,
            label=n.label,
            is_source=n.is_source,
            phase_sync=n.phase_sync,
            stalled=n.stalled,
            in_edges=tuple(in_edges[n.index]),
            out_edges=tuple(out_edges[n.index]),
        )
        for n in nodes
    ]
    return ProtocolModel(
        nodes=wired,
        edges=edges,
        queue_capacity=queue_capacity,
        max_buffers=max_buffers,
        flush_burst=flush_burst,
    )


def _initial(model: ProtocolModel) -> _State:
    n, e = len(model.nodes), len(model.edges)
    budgets = tuple(
        model.max_buffers if node.is_source and node.out_edges else 0
        for node in model.nodes
    )
    zeros_n = (0,) * n
    zeros_e = (0,) * e
    return ((_RUN,) * n, budgets, zeros_n, zeros_e, zeros_e, zeros_e, zeros_e)


def _successors(model: ProtocolModel, state: _State) -> list[tuple[str, _State]]:
    modes, budgets, flushrem, queued, markers, pending, unacked = state
    nodes, edges, capacity = model.nodes, model.edges, model.queue_capacity

    used = [0] * len(nodes)
    blocked = [False] * len(nodes)
    for edge in edges:
        used[edge.dst] += queued[edge.index] + (1 if markers[edge.index] == 1 else 0)
        if pending[edge.index] > 0:
            blocked[edge.src] = True

    out: list[tuple[str, _State]] = []

    def repl(base: tuple[int, ...], index: int, value: int) -> tuple[int, ...]:
        return base[:index] + (value,) + base[index + 1 :]

    # Send transitions: a pending buffer moves into the consumer queue
    # when a slot and (for windowed policies) a credit are available.
    for edge in edges:
        i = edge.index
        src = nodes[edge.src]
        if src.stalled or pending[i] == 0:
            continue
        if used[edge.dst] >= capacity:
            continue
        if edge.window is not None and unacked[i] >= edge.window:
            continue
        new_unacked = (
            repl(unacked, i, unacked[i] + 1) if edge.window is not None else unacked
        )
        out.append(
            (
                f"{src.label} sends a buffer on {edge.stream!r} to "
                f"{nodes[edge.dst].label}",
                (
                    modes,
                    budgets,
                    flushrem,
                    repl(queued, i, queued[i] + 1),
                    markers,
                    repl(pending, i, pending[i] - 1),
                    new_unacked,
                ),
            )
        )

    for node in nodes:
        i = node.index
        mode = modes[i]
        if node.stalled or mode == _DONE:
            continue

        if mode == _RUN:
            if not blocked[i]:
                # Sources stage new buffers while they have budget.
                if node.is_source and budgets[i] > 0:
                    for ei in node.out_edges:
                        out.append(
                            (
                                f"{node.label} produces a buffer on "
                                f"{edges[ei].stream!r}",
                                (
                                    modes,
                                    repl(budgets, i, budgets[i] - 1),
                                    flushrem,
                                    queued,
                                    markers,
                                    repl(pending, ei, pending[ei] + 1),
                                    unacked,
                                ),
                            )
                        )
                # Consume one buffer; ack its window; maybe forward.
                for ei in node.in_edges:
                    if queued[ei] == 0:
                        continue
                    new_queued = repl(queued, ei, queued[ei] - 1)
                    new_unacked = (
                        repl(unacked, ei, unacked[ei] - 1)
                        if edges[ei].window is not None and unacked[ei] > 0
                        else unacked
                    )
                    out.append(
                        (
                            f"{node.label} consumes a buffer from "
                            f"{edges[ei].stream!r}",
                            (
                                modes,
                                budgets,
                                flushrem,
                                new_queued,
                                markers,
                                pending,
                                new_unacked,
                            ),
                        )
                    )
                    if not node.phase_sync:
                        for oi in node.out_edges:
                            out.append(
                                (
                                    f"{node.label} consumes from "
                                    f"{edges[ei].stream!r} and forwards on "
                                    f"{edges[oi].stream!r}",
                                    (
                                        modes,
                                        budgets,
                                        flushrem,
                                        new_queued,
                                        markers,
                                        repl(pending, oi, pending[oi] + 1),
                                        new_unacked,
                                    ),
                                )
                            )
                # Take a queued end-of-work marker.
                for ei in node.in_edges:
                    if markers[ei] == 1:
                        out.append(
                            (
                                f"{node.label} takes end-of-work on "
                                f"{edges[ei].stream!r}",
                                (
                                    modes,
                                    budgets,
                                    flushrem,
                                    queued,
                                    repl(markers, ei, 2),
                                    pending,
                                    unacked,
                                ),
                            )
                        )
                # Reach the phase boundary: sources whenever they choose,
                # consumers once every input is closed and drained.
                ready = node.is_source or (
                    all(markers[ei] == 2 for ei in node.in_edges)
                    and all(queued[ei] == 0 for ei in node.in_edges)
                )
                if ready:
                    burst = (
                        model.flush_burst
                        if node.phase_sync and node.out_edges
                        else 0
                    )
                    out.append(
                        (
                            f"{node.label} reaches its end-of-work phase "
                            f"boundary",
                            (
                                repl(modes, i, _FLUSH),
                                budgets,
                                repl(flushrem, i, burst),
                                queued,
                                markers,
                                pending,
                                unacked,
                            ),
                        )
                    )

        elif mode == _FLUSH:
            if not blocked[i]:
                if flushrem[i] > 0:
                    for oi in node.out_edges:
                        out.append(
                            (
                                f"{node.label} flush-writes on "
                                f"{edges[oi].stream!r}",
                                (
                                    modes,
                                    budgets,
                                    repl(flushrem, i, flushrem[i] - 1),
                                    queued,
                                    markers,
                                    repl(pending, oi, pending[oi] + 1),
                                    unacked,
                                ),
                            )
                        )
                out.append(
                    (
                        f"{node.label} finishes flushing",
                        (
                            repl(modes, i, _CLOSING),
                            budgets,
                            repl(flushrem, i, 0),
                            queued,
                            markers,
                            pending,
                            unacked,
                        ),
                    )
                )

        elif mode == _CLOSING:
            unsent = [oi for oi in node.out_edges if markers[oi] == 0]
            for oi in unsent:
                if used[edges[oi].dst] < capacity:
                    out.append(
                        (
                            f"{node.label} delivers end-of-work on "
                            f"{edges[oi].stream!r}",
                            (
                                modes,
                                budgets,
                                flushrem,
                                queued,
                                repl(markers, oi, 1),
                                pending,
                                unacked,
                            ),
                        )
                    )
            if not unsent:
                out.append(
                    (
                        f"{node.label} exits",
                        (
                            repl(modes, i, _DONE),
                            budgets,
                            flushrem,
                            queued,
                            markers,
                            pending,
                            unacked,
                        ),
                    )
                )
    return out


def _classify(
    model: ProtocolModel, state: _State
) -> tuple[tuple[str, ...], str]:
    """Stuck-node descriptions and the F9xx rule of a wedged state."""
    modes, _budgets, _flushrem, queued, markers, pending, unacked = state
    nodes, edges, capacity = model.nodes, model.edges, model.queue_capacity
    used = [0] * len(nodes)
    for edge in edges:
        used[edge.dst] += queued[edge.index] + (1 if markers[edge.index] == 1 else 0)

    reasons: list[str] = []
    has_dd = False
    has_stalled = False
    for edge in edges:
        i = edge.index
        src, dst = nodes[edge.src], nodes[edge.dst]
        if pending[i] > 0:
            if edge.window is not None and unacked[i] >= edge.window:
                reasons.append(
                    f"{src.label} is blocked on {edge.stream!r}: sliding "
                    f"window full ({unacked[i]}/{edge.window} unacked, "
                    f"acks require {dst.label} to consume)"
                )
                has_dd = True
            elif used[edge.dst] >= capacity:
                reasons.append(
                    f"{src.label} is blocked on {edge.stream!r}: the queue "
                    f"of {dst.label} is full ({used[edge.dst]}/{capacity})"
                )
                if dst.stalled:
                    has_stalled = True
        if modes[edge.src] == _CLOSING and markers[i] == 0:
            why = (
                "the consumer is stalled"
                if dst.stalled
                else f"its queue is full ({used[edge.dst]}/{capacity})"
            )
            reasons.append(
                f"{src.label} cannot deliver end-of-work on "
                f"{edge.stream!r}: {why}"
            )
            if dst.stalled:
                has_stalled = True
        if markers[i] == 1 and dst.stalled:
            has_stalled = True
    for node in nodes:
        if node.stalled or modes[node.index] == _DONE:
            continue
        waiting = [
            edges[ei].stream
            for ei in node.in_edges
            if markers[ei] != 2
        ]
        if modes[node.index] == _RUN and waiting:
            reasons.append(
                f"{node.label} waits for end-of-work on "
                f"{', '.join(repr(s) for s in sorted(set(waiting)))}"
            )
    if has_dd:
        rule = "F902"
    elif has_stalled:
        rule = "F903"
    else:
        rule = "F901"
    return tuple(reasons), rule


#: Counterexample specificity: a credit wedge beats a close wedge beats
#: the generic blocking cycle when one exploration finds several classes.
_RULE_PRIORITY = ("F902", "F903", "F901")


def check_model(model: ProtocolModel, max_states: int = 200_000) -> ProtocolResult:
    """Bounded BFS over the model's reachable states.

    The search does not stop at the first wedged state: it keeps one
    (shortest) counterexample per F9xx class and reports the most
    specific one found, so a credit wedge is not shadowed by the
    shallower close-ordering wedges every cyclic graph also contains.
    """
    initial = _initial(model)
    live = [n.index for n in model.nodes if not n.stalled]
    parents: dict[_State, tuple[_State | None, str]] = {initial: (None, "")}
    frontier: deque[_State] = deque([initial])
    explored = 0
    truncated = False
    found: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {}
    while frontier:
        state = frontier.popleft()
        explored += 1
        successors = _successors(model, state)
        if not successors:
            if all(state[0][i] == _DONE for i in live):
                continue  # clean completion
            stuck, rule = _classify(model, state)
            if rule not in found:
                # Wedged: reconstruct the event trace.
                trace: list[str] = []
                cursor: _State | None = state
                while cursor is not None:
                    prev, event = parents[cursor]
                    if event:
                        trace.append(event)
                    cursor = prev
                trace.reverse()
                found[rule] = (tuple(trace), stuck)
            if _RULE_PRIORITY[0] in found:
                truncated = True
                break
            continue
        for event, succ in successors:
            if succ not in parents:
                if len(parents) >= max_states:
                    truncated = True
                    continue
                parents[succ] = (state, event)
                frontier.append(succ)
    if found:
        rule = next(r for r in _RULE_PRIORITY if r in found)
        trace_events, stuck = found[rule]
        return ProtocolResult(
            deadlock_free=False,
            exhaustive=not truncated,
            states_explored=explored,
            counterexample=trace_events,
            stuck=stuck,
            rule=rule,
            labels=model.labels,
        )
    return ProtocolResult(
        deadlock_free=None if truncated else True,
        exhaustive=not truncated,
        states_explored=explored,
        labels=model.labels,
    )


def check_protocol(
    graph: "FilterGraph",
    placement: "Placement | None" = None,
    policy_for: "Callable[[str], Callable[[], WriterPolicy]] | None" = None,
    queue_capacity: int = 8,
    stalled: Iterable[str] = (),
    window_overrides: Mapping[str, int] | None = None,
    max_buffers: int = 2,
    flush_burst: int = 1,
    max_states: int = 200_000,
) -> ProtocolResult:
    """Build the model of a configuration and explore it."""
    model = build_model(
        graph,
        placement,
        policy_for,
        queue_capacity,
        stalled=stalled,
        window_overrides=window_overrides,
        max_buffers=max_buffers,
        flush_burst=flush_burst,
    )
    return check_model(model, max_states=max_states)


def _trace_hint(result: ProtocolResult, limit: int = 12) -> str:
    events = result.counterexample
    shown = events[-limit:]
    prefix = f"... {len(events) - len(shown)} earlier events; " if len(events) > limit else ""
    trace = " -> ".join(shown)
    stuck = "; ".join(result.stuck[:4])
    return f"Offending event sequence: {prefix}{trace}. Wedged: {stuck}"


def verify_protocol(
    graph: "FilterGraph",
    placement: "Placement | None" = None,
    policy_for: "Callable[[str], Callable[[], WriterPolicy]] | None" = None,
    queue_capacity: int = 8,
    max_states: int = 4_000,
    max_edges: int = 32,
    max_buffers: int = 1,
) -> list[Diagnostic]:
    """Run the ``F9xx`` protocol rules with engine-hook sized bounds.

    The defaults keep the pass cheap enough to run at every engine
    construction; ``repro lint --deep`` and direct :func:`check_protocol`
    calls use larger bounds for complete proofs.
    """
    model = build_model(
        graph,
        placement,
        policy_for,
        queue_capacity,
        max_buffers=max_buffers,
    )
    if len(model.edges) > max_edges or not model.edges:
        if model.edges:
            return [
                RULES["F904"].diagnostic(
                    "graph",
                    f"protocol model has {len(model.edges)} copy-set edges "
                    f"(> {max_edges}); the pass was skipped",
                )
            ]
        return []
    result = check_model(model, max_states=max_states)
    out: list[Diagnostic] = []
    if result.deadlock_free is False:
        rule = result.rule or "F901"
        out.append(
            RULES[rule].diagnostic(
                "graph",
                f"protocol wedge reachable in {result.states_explored} "
                f"states: {result.stuck[0] if result.stuck else 'no progress'}",
                hint=_trace_hint(result),
            )
        )
    elif not result.exhaustive:
        out.append(
            RULES["F904"].diagnostic(
                "graph",
                f"protocol exploration truncated at {result.states_explored} "
                f"states (max_states={max_states}); no wedge found so far",
            )
        )
    return out
