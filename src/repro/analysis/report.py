"""Rendering of diagnostic reports: ``text`` for humans, ``json`` for CI.

The JSON shape is stable (``version`` 1)::

    {
      "version": 1,
      "summary": {"error": 1, "warning": 2, "info": 0},
      "diagnostics": [
        {"rule": "G102", "name": "cycle", "severity": "error",
         "subject": "graph", "message": "...", "hint": "...",
         "location": ""},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.diagnostics import DiagnosticReport, Severity
from repro.analysis.rules import rule_catalogue

__all__ = ["format_text", "to_json_dict", "to_json", "format_rule_catalogue"]

_REPORT_VERSION = 1


def format_text(report: DiagnosticReport, show_hints: bool = True) -> str:
    """A line per diagnostic plus a severity summary; '' when clean."""
    if not report:
        return "no diagnostics"
    lines: list[str] = []
    for diag in report:
        lines.append(str(diag))
        if show_hints and diag.hint:
            lines.append(f"        fix: {diag.hint}")
    counts = _summary(report)
    lines.append(
        "-- "
        + ", ".join(f"{n} {label}" for label, n in counts.items() if n)
        + f" ({len(report)} total)"
    )
    return "\n".join(lines)


def _summary(report: DiagnosticReport) -> dict[str, int]:
    counts = {s.label: 0 for s in sorted(Severity, reverse=True)}
    for diag in report:
        counts[diag.severity.label] += 1
    return counts


def to_json_dict(report: DiagnosticReport) -> dict[str, Any]:
    """The stable JSON-ready dict form of a report."""
    return {
        "version": _REPORT_VERSION,
        "summary": _summary(report),
        "diagnostics": [diag.to_dict() for diag in report],
    }


def to_json(report: DiagnosticReport, indent: int | None = 2) -> str:
    """The report serialised as a JSON document."""
    return json.dumps(to_json_dict(report), indent=indent)


def format_rule_catalogue() -> str:
    """The full rule catalogue as aligned text (``repro lint --rules``)."""
    lines = []
    for rule in rule_catalogue():
        lines.append(
            f"{rule.id}  {rule.severity.label.upper():7s} "
            f"{rule.name}  [{rule.scope}]"
        )
        lines.append(f"      {rule.summary}")
        lines.append(f"      fix: {rule.hint}")
    return "\n".join(lines)
