"""Figure 7 — skewed data distribution across two clusters.

Paper setup: two Blue + two Rogue nodes; the 25 GB dataset starts evenly
partitioned over all four nodes ("balanced"), then P% (25/50/75) of the
files on the Blue nodes move to the Rogue nodes.  Active pixel, 2048^2
image; all three filter configurations x {RR, WRR, DD}.

Expected shape: RERa-M is the most sensitive to skew (pure SPMD — the node
with the most data gates the run); R-ERa-M decouples retrieval from
processing and degrades less; RE-Ra-M is best overall (same decoupling,
less data on the wire); DD helps more as skew grows.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.storage import HostDisks, StorageMap
from repro.experiments.common import ResultTable, mean, run_datacutter
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.profile import DatasetProfile, dataset_25gb

__all__ = ["run"]

CONFIGS = ("RERa-M", "R-ERa-M", "RE-Ra-M")


def _storage(profile: DatasetProfile, blue, rogue, skew_fraction: float) -> StorageMap:
    balanced = StorageMap.balanced(
        profile.files,
        [HostDisks(h, 2) for h in blue + rogue],
    )
    if skew_fraction == 0.0:
        return balanced
    return balanced.skew(blue, [HostDisks(h, 2) for h in rogue], skew_fraction)


def _one_point(
    profile: DatasetProfile,
    configuration: str,
    policy: str,
    skew_fraction: float,
    image: int,
    timesteps: Sequence[int],
) -> float:
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=2, rogue_nodes=2, deathstar=False
    )
    blue = ["blue0", "blue1"]
    rogue = ["rogue0", "rogue1"]
    storage = _storage(profile, blue, rogue, skew_fraction)
    metrics = run_datacutter(
        cluster,
        profile,
        storage,
        configuration=configuration,
        algorithm="active",
        policy=policy,
        width=image,
        height=image,
        timesteps=timesteps,
        compute_hosts=blue + rogue,
        merge_host="blue0",
    )
    return mean(m.makespan for m in metrics)


def run(
    scale: float = 0.02,
    skew_levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75),
    image: int = 2048,
    timesteps: Sequence[int] = (0,),
) -> ResultTable:
    """Regenerate Figure 7 (four bar groups as one table)."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Figure 7: skewed data distribution, 2 Blue + 2 Rogue, active "
        f"pixel, {image}^2 image, {profile.name}",
        ["skew", "config", "policy", "seconds"],
    )
    for skew in skew_levels:
        for config in CONFIGS:
            for policy in ("RR", "WRR", "DD"):
                table.add(
                    skew=f"{int(skew * 100)}%",
                    config=config,
                    policy=policy,
                    seconds=_one_point(
                        profile, config, policy, skew, image, timesteps
                    ),
                )
    table.notes.append(
        "paper shape: RERa-M degrades most with skew; R-ERa-M decouples "
        "retrieval from compute; RE-Ra-M is best; DD helps under skew"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
