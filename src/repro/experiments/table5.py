"""Table 5 — writer policies with an 8-way compute node on a slow link.

Paper setup (Figure 6): the dataset lives on 1/2/4/8 two-processor Red
nodes (Gigabit among themselves); the 8-way Deathstar node — reachable only
over Fast Ethernet — runs the single Merge copy plus seven Raster (or
ExtractRaster) copies; every data node runs one copy of each non-merge
filter.  Active pixel, 2048^2 image, policies RR / WRR / DD.

Expected shape: WRR is best (no background load, so weighting by copy
count is exactly right, with zero message overhead); DD pays for
acknowledgment traffic over the slow link; the compute node helps when
data sits on few nodes and stops helping at 8; RE-Ra-M beats R-ERa-M
(lower communication volume).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.placement import Placement
from repro.data.storage import HostDisks, StorageMap
from repro.engines.simulated import SimulatedEngine
from repro.experiments.common import ResultTable, mean
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.app import IsosurfaceApp
from repro.viz.profile import DatasetProfile, dataset_25gb

__all__ = ["run"]

COMPUTE_COPIES = 7  # raster copies on the 8-way node (merge takes a cpu)


def _one_point(
    profile: DatasetProfile,
    configuration: str,
    policy: str,
    data_nodes: int,
    image: int,
    timesteps: Sequence[int],
) -> float:
    times = []
    for t in timesteps:
        env = Environment()
        cluster = umd_testbed(
            env,
            red_nodes=data_nodes,
            blue_nodes=0,
            rogue_nodes=0,
            deathstar=True,
        )
        reds = [f"red{i}" for i in range(data_nodes)]
        storage = StorageMap.balanced(profile.files, [HostDisks(h, 1) for h in reds])
        app = IsosurfaceApp(
            profile, storage, width=image, height=image,
            algorithm="active", timestep=t,
        )
        graph = app.graph(configuration)
        placement = Placement()
        source = "RE" if configuration == "RE-Ra-M" else "R"
        worker = "Ra" if configuration == "RE-Ra-M" else "ERa"
        placement.spread(source, reds)
        placement.place(
            worker, [(h, 1) for h in reds] + [("deathstar0", COMPUTE_COPIES)]
        )
        placement.place("M", ["deathstar0"])
        metrics = SimulatedEngine(cluster, graph, placement, policy=policy).run()
        times.append(metrics.makespan)
    return mean(times)


def run(
    scale: float = 0.02,
    data_node_counts: Sequence[int] = (1, 2, 4, 8),
    image: int = 2048,
    timesteps: Sequence[int] = (0,),
) -> ResultTable:
    """Regenerate Table 5."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Table 5: policies with the 8-way compute node, active pixel, "
        f"{image}^2 image, {profile.name}",
        ["data_nodes", "config", "policy", "seconds"],
    )
    for data_nodes in data_node_counts:
        for config in ("RE-Ra-M", "R-ERa-M"):
            for policy in ("RR", "WRR", "DD"):
                table.add(
                    data_nodes=data_nodes,
                    config=config,
                    policy=policy,
                    seconds=_one_point(
                        profile, config, policy, data_nodes, image, timesteps
                    ),
                )
    table.notes.append(
        "paper shape: WRR best; DD close but pays ack overhead over the "
        "Fast Ethernet uplink; RE-Ra-M beats R-ERa-M; the compute node "
        "helps most with few data nodes"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
