"""Shared experiment machinery: run helpers and result tables.

Every experiment module exposes ``run(scale=..., timesteps=...) ->
ResultTable``.  ``scale`` shrinks the paper's datasets proportionally (the
compute/IO/network balance is preserved, so orderings and crossovers hold);
``timesteps`` is how many consecutive timesteps are rendered and averaged,
mirroring the paper's "average of five consecutive timesteps".
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.instrument import RunMetrics
from repro.data.storage import StorageMap
from repro.engines.simulated import SimulatedEngine
from repro.sim.cluster import Cluster
from repro.viz.app import IsosurfaceApp
from repro.viz.profile import DatasetProfile

__all__ = ["ResultTable", "run_datacutter", "mean"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


@dataclass
class ResultTable:
    """A printable experiment result: ordered columns, dict rows."""

    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **cells: Any) -> None:
        """Append one row; unknown columns are rejected."""
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}")
        self.rows.append(cells)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order (missing -> None)."""
        return [row.get(name) for row in self.rows]

    def select(self, **criteria: Any) -> list[dict[str, Any]]:
        """Rows matching all (column, value) criteria."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]

    def value(self, column: str, **criteria: Any) -> Any:
        """The single value of ``column`` in the unique matching row."""
        matches = self.select(**criteria)
        if len(matches) != 1:
            raise KeyError(
                f"{len(matches)} rows match {criteria!r} (need exactly 1)"
            )
        return matches[0][column]

    def format(self) -> str:
        """Render as an aligned text table."""

        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return "" if value is None else str(value)

        cells = [[fmt(row.get(c)) for c in self.columns] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        for row in cells:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def run_datacutter(
    cluster: Cluster,
    profile: DatasetProfile,
    storage: StorageMap,
    configuration: str,
    algorithm: str,
    policy: str,
    width: int,
    height: int,
    timesteps: Sequence[int] = (0,),
    compute_hosts: list[str] | None = None,
    merge_host: str | None = None,
    copies_per_host: int | dict[str, int] = 1,
    engine_kwargs: dict[str, Any] | None = None,
) -> list[RunMetrics]:
    """Render ``timesteps`` consecutively with the DataCutter engine.

    Returns one :class:`RunMetrics` per timestep; reuse :func:`mean` over
    their ``makespan`` for paper-style averages.  Every run's counters are
    cross-checked with :meth:`RunMetrics.validate` before being returned,
    so a paper table can never be derived from books that don't balance.
    """
    results = []
    for t in timesteps:
        app = IsosurfaceApp(
            profile,
            storage,
            width=width,
            height=height,
            algorithm=algorithm,
            timestep=t,
        )
        graph = app.graph(configuration)
        placement = app.placement(
            configuration,
            compute_hosts=compute_hosts,
            merge_host=merge_host,
            copies_per_host=copies_per_host,
        )
        engine = SimulatedEngine(
            cluster, graph, placement, policy=policy, **(engine_kwargs or {})
        )
        results.append(engine.run().validate(graph))
    return results
