"""Figure 2(a) — "Isosurface rendering of chemical densities in a reactive
transport simulation."

The one non-diagram figure outside the evaluation section: an actual
rendering.  This generator runs the real threaded pipeline over a synthetic
reactive-transport dataset (one chemical species' concentration field) and
writes the image as a PPM next to the repository root (or a caller-chosen
path), reporting the pipeline statistics as a table.
"""

from __future__ import annotations

from pathlib import Path

from repro.data.parssim import ParSSimDataset
from repro.data.storage import HostDisks, StorageMap
from repro.engines.threaded import ThreadedEngine
from repro.experiments.common import ResultTable
from repro.viz.app import IsosurfaceApp
from repro.viz.profile import DatasetProfile

__all__ = ["run"]


def run(
    grid: int = 41,
    image: int = 256,
    isovalue: float = 0.25,
    output: str | Path | None = None,
) -> ResultTable:
    """Render the figure; returns pipeline statistics.

    ``output`` (default ``figure2a.ppm`` in the working directory) receives
    the image.
    """
    dataset = ParSSimDataset((grid, grid, grid), timesteps=1, species=4, seed=2)
    profile = DatasetProfile.measured(
        "figure2a", dataset, nchunks=27, nfiles=8, isovalue=isovalue
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    app = IsosurfaceApp(
        profile, storage, width=image, height=image, algorithm="active",
        dataset=dataset, isovalue=isovalue,
    )
    metrics = ThreadedEngine(
        app.graph("RE-Ra-M"),
        app.placement("RE-Ra-M", copies_per_host=2),
        policy="DD",
    ).run()
    result = metrics.result
    path = Path(output) if output is not None else Path("figure2a.ppm")
    with open(path, "wb") as fh:
        fh.write(f"P6 {image} {image} 255\n".encode())
        fh.write(result.image.tobytes())

    table = ResultTable(
        f"Figure 2(a): reactive-transport isosurface, {grid}^3 grid, "
        f"iso={isovalue} -> {path}",
        ["quantity", "value"],
    )
    table.add(quantity="triangles", value=profile.total_triangles(0))
    table.add(quantity="active pixels", value=result.active_pixels)
    table.add(quantity="merge buffers", value=result.buffers_merged)
    buffers, nbytes = metrics.stream_totals("RE->Ra")
    table.add(quantity="RE->Ra buffers", value=buffers)
    table.add(quantity="RE->Ra kB", value=nbytes / 1e3)
    return table


def main() -> None:
    """Print this experiment's table (and write figure2a.ppm)."""
    print(run().format())


if __name__ == "__main__":
    main()
