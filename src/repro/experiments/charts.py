"""Text bar charts for the figure experiments.

The paper's Figures 4, 5 and 7 are bar charts; this module renders a
:class:`~repro.experiments.common.ResultTable` as grouped horizontal ASCII
bars so the shape (who wins, by how much, where the crossover falls) is
visible straight from a terminal::

    python -m repro.experiments --charts
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import ResultTable

__all__ = ["bar_chart"]

_BAR = "#"


def bar_chart(
    table: ResultTable,
    value: str,
    label_columns: Sequence[str],
    series_column: str,
    width: int = 48,
) -> str:
    """Render grouped horizontal bars.

    Parameters
    ----------
    table:
        The experiment result.
    value:
        Numeric column to plot (bar length).
    label_columns:
        Columns identifying a group (one blank-separated label per group).
    series_column:
        Column distinguishing the bars within a group (one bar per value).
    width:
        Character width of the longest bar.
    """
    rows = [r for r in table.rows if r.get(value) is not None]
    if not rows:
        return f"{table.title}\n(no data)"
    peak = max(float(r[value]) for r in rows)
    if peak <= 0:
        peak = 1.0
    series_names = []
    for row in rows:
        name = str(row[series_column])
        if name not in series_names:
            series_names.append(name)
    name_width = max(len(n) for n in series_names)

    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        key = tuple(row.get(c) for c in label_columns)
        groups.setdefault(key, []).append(row)

    lines = [table.title, "=" * min(len(table.title), 78)]
    for key, members in groups.items():
        label = "  ".join(f"{c}={v}" for c, v in zip(label_columns, key))
        lines.append(label)
        for row in members:
            magnitude = float(row[value])
            bar = _BAR * max(1, round(magnitude / peak * width))
            lines.append(
                f"  {str(row[series_column]):<{name_width}} "
                f"{bar} {magnitude:.3f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
