"""Table 4 — filter configurations and writer policies under background load.

Paper setup: 8 Rogue nodes; every node runs one copy of each filter, the
eighth also runs the single Merge copy; the dataset is partitioned over all
8 nodes; background jobs (0/1/4/16) run on four of the non-merge nodes.
Grid: {RERa-M, RE-Ra-M, R-ERa-M} x {RR, DD} x {active pixel, z-buffer} x
{512^2, 2048^2}.

Expected shape: DD <= RR everywhere, the gap growing with load (except for
RERa-M, where a single combined filter leaves nothing to schedule);
RE-Ra-M is the best configuration; z-buffer at 2048^2 is much slower than
active pixel (synchronised merge of full z-buffers).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.storage import HostDisks, StorageMap
from repro.experiments.common import ResultTable, mean, run_datacutter
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.profile import DatasetProfile, dataset_25gb

__all__ = ["run", "CONFIGS"]

CONFIGS = ("RERa-M", "RE-Ra-M", "R-ERa-M")
NODES = 8
LOADED = 4  # background jobs on 4 of the 7 non-merge nodes


def _one_point(
    profile: DatasetProfile,
    configuration: str,
    algorithm: str,
    policy: str,
    image: int,
    jobs: int,
    timesteps: Sequence[int],
) -> float:
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=0, rogue_nodes=NODES, deathstar=False
    )
    names = [f"rogue{i}" for i in range(NODES)]
    cluster.set_background_load(jobs, hosts=names[:LOADED])
    storage = StorageMap.balanced(profile.files, [HostDisks(h, 2) for h in names])
    metrics = run_datacutter(
        cluster,
        profile,
        storage,
        configuration=configuration,
        algorithm=algorithm,
        policy=policy,
        width=image,
        height=image,
        timesteps=timesteps,
        compute_hosts=names,
        merge_host=names[-1],
    )
    return mean(m.makespan for m in metrics)


def run(
    scale: float = 0.02,
    background_levels: Sequence[int] = (0, 1, 4, 16),
    image_sizes: Sequence[int] = (512, 2048),
    timesteps: Sequence[int] = (0,),
) -> ResultTable:
    """Regenerate Table 4."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Table 4: configurations x policies under background load, "
        f"8 Rogue nodes, {profile.name}",
        ["bg_jobs", "image", "config", "algorithm", "policy", "seconds"],
    )
    for jobs in background_levels:
        for image in image_sizes:
            for config in CONFIGS:
                for algorithm in ("active", "zbuffer"):
                    for policy in ("RR", "DD"):
                        table.add(
                            bg_jobs=jobs,
                            image=image,
                            config=config,
                            algorithm=algorithm,
                            policy=policy,
                            seconds=_one_point(
                                profile, config, algorithm, policy,
                                image, jobs, timesteps,
                            ),
                        )
    table.notes.append(
        "paper shape: DD <= RR with the gap growing with load; RERa-M "
        "gains nothing from DD; RE-Ra-M is the best configuration; "
        "z-buffer at 2048^2 is far slower than active pixel"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
