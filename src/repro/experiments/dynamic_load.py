"""Extension experiment — time-varying background load.

The paper's load experiments hold the background-job count fixed per run;
its motivation ("shared resources can result in varying resource
availability") is really about load that *changes over time*.  This
extension drives the loaded nodes through phases (quiet -> overloaded ->
quiet ...) while consecutive timesteps render, and compares how the writer
policies track the change:

- RR is oblivious — every phase of overload stalls it;
- DD re-adapts within a window's worth of buffers;
- RATE (our extension policy) re-adapts via its service-time EWMA.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.storage import HostDisks, StorageMap
from repro.experiments.common import ResultTable, run_datacutter
from repro.sim.background import LoadPhase, scheduled_background_load
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.profile import dataset_25gb

__all__ = ["run"]

ROGUE = [f"rogue{i}" for i in range(4)]
BLUE = [f"blue{i}" for i in range(4)]


def run(
    scale: float = 0.02,
    policies: Sequence[str] = ("RR", "DD", "RATE"),
    timesteps: Sequence[int] = (0, 1, 2, 3),
    phase_seconds: float = 0.5,
    jobs_high: int = 16,
    image: int = 2048,
) -> ResultTable:
    """Render ``timesteps`` under an alternating load schedule."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Extension: time-varying background load ({phase_seconds:g}s "
        f"phases, 0<->{jobs_high} jobs on Rogue), {profile.name}",
        ["policy", "timestep", "seconds"],
    )
    for policy in policies:
        env = Environment()
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=4, rogue_nodes=4, deathstar=False
        )
        scheduled_background_load(
            env,
            cluster,
            ROGUE,
            [LoadPhase(phase_seconds, 0), LoadPhase(phase_seconds, jobs_high)],
            repeat=True,
        )
        storage = StorageMap.balanced(
            profile.files, [HostDisks(h, 2) for h in ROGUE + BLUE]
        )
        for t in timesteps:
            [metrics] = run_datacutter(
                cluster,
                profile,
                storage,
                configuration="RE-Ra-M",
                algorithm="active",
                policy=policy,
                width=image,
                height=image,
                timesteps=(t,),
                compute_hosts=ROGUE + BLUE,
                merge_host=BLUE[0],
            )
            table.add(policy=policy, timestep=t, seconds=metrics.makespan)
    table.notes.append(
        "expected: DD tracks rapid phase changes best (count-based, "
        "re-adapts within one window); RATE's EWMA lags oscillating load "
        "but still beats oblivious RR"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
