"""Table 3 — DD routing shifts buffers from loaded to unloaded nodes.

Same setup as Figure 5.  The statistic: the average number of buffers each
Raster copy receives over the (R)E -> Ra stream, grouped by node class
(Rogue = loaded, Blue = dedicated), as the background-job count grows.

Expected shape: at 0 jobs the split is near even; as jobs grow, the Rogue
share falls monotonically (DD directs buffers to the consumers showing
recent good performance), and the shift is stronger for the 2048^2 image
(more compute to route around).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.common import ResultTable, mean
from repro.experiments.figure5 import heterogeneous_run
from repro.viz.profile import dataset_25gb

__all__ = ["run"]


def run(
    scale: float = 0.02,
    per_side_counts: Sequence[int] = (2, 4),
    background_levels: Sequence[int] = (0, 1, 4, 16),
    image_sizes: Sequence[int] = (512, 2048),
    timesteps: Sequence[int] = (0,),
) -> ResultTable:
    """Regenerate Table 3 (avg buffers per Raster copy per node class)."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Table 3: avg RE->Ra buffers per Raster copy per node class (DD), "
        f"{profile.name}",
        [
            "rogue+blue",
            "bg_jobs",
            "image",
            "algorithm",
            "rogue_avg",
            "blue_avg",
            "rogue_share",
        ],
    )
    host_class = {f"rogue{i}": "rogue" for i in range(16)}
    host_class.update({f"blue{i}": "blue" for i in range(16)})
    for per_side in per_side_counts:
        for image in image_sizes:
            for algorithm, label in (("zbuffer", "DC Z-buffer"), ("active", "DC A.Pixel")):
                for jobs in background_levels:
                    metrics = heterogeneous_run(
                        profile, per_side, jobs, image, algorithm, timesteps
                    )
                    per_class = [
                        m.buffers_per_copy_by_class("Ra", host_class)
                        for m in metrics
                    ]
                    rogue_avg = mean(pc.get("rogue", 0.0) for pc in per_class)
                    blue_avg = mean(pc.get("blue", 0.0) for pc in per_class)
                    total = rogue_avg + blue_avg
                    table.add(
                        **{"rogue+blue": f"{per_side}+{per_side}"},
                        bg_jobs=jobs,
                        image=image,
                        algorithm=label,
                        rogue_avg=rogue_avg,
                        blue_avg=blue_avg,
                        rogue_share=rogue_avg / total if total else 0.0,
                    )
    table.notes.append(
        "paper shape: the rogue share starts near 0.5 and falls "
        "monotonically with background jobs; the fall is steeper at 2048^2"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
