"""Extension experiment — concurrent visualization queries.

The paper renders one query at a time; real visualization servers field
several users at once (its client/server motivation).  This extension runs
1..N identical isosurface queries *concurrently* on the same cluster via
:func:`repro.engines.simulated.run_concurrent` and reports per-query
latency and aggregate throughput.

Expected shape: processor sharing stretches each query's latency roughly
linearly with the multiprogramming level, while aggregate throughput stays
near flat (the cluster is work-conserving) — small batching gains appear
because independent queries overlap each other's I/O and network phases.

:func:`run_real` replays the same contention model for real: identical
isosurface queries submitted concurrently to one warm
:class:`~repro.engines.pool.WarmPool` (the ``repro serve`` substrate), with
wall-clock latencies instead of simulated time.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.data.storage import HostDisks, StorageMap
from repro.engines.simulated import SimulatedEngine, run_concurrent
from repro.experiments.common import ResultTable, mean
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.app import IsosurfaceApp
from repro.viz.profile import dataset_25gb

__all__ = ["run", "run_real"]


def run(
    scale: float = 0.02,
    levels: Sequence[int] = (1, 2, 4),
    nodes: int = 8,
    image: int = 2048,
) -> ResultTable:
    """Run each multiprogramming level; one row per level."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Extension: concurrent queries on {nodes} Blue nodes, {profile.name}",
        ["queries", "mean_latency", "batch_time", "throughput_qps"],
    )
    names = [f"blue{i}" for i in range(nodes)]
    for level in levels:
        env = Environment()
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=nodes, rogue_nodes=0, deathstar=False
        )
        storage = StorageMap.balanced(
            profile.files, [HostDisks(h, 2) for h in names]
        )
        engines = []
        for q in range(level):
            app = IsosurfaceApp(
                profile,
                storage,
                width=image,
                height=image,
                algorithm="active",
                timestep=q % profile.timesteps,
            )
            engines.append(
                SimulatedEngine(
                    cluster,
                    app.graph("RE-Ra-M"),
                    app.placement("RE-Ra-M", compute_hosts=names),
                    policy="DD",
                )
            )
        start = env.now
        results = run_concurrent(engines)
        batch = env.now - start
        table.add(
            queries=level,
            mean_latency=mean(m.makespan for m in results),
            batch_time=batch,
            throughput_qps=level / batch,
        )
    table.notes.append(
        "expected: latency grows with the multiprogramming level while "
        "aggregate throughput holds (work-conserving sharing); batching "
        "beats running the same queries back-to-back"
    )
    return table


def run_real(
    levels: Sequence[int] = (1, 2, 4),
    grid: int = 13,
    image: int = 32,
    copies: int = 2,
) -> ResultTable:
    """The same contention model on a real warm pool, wall-clock timed.

    One :class:`~repro.engines.pool.WarmPool` per level (``max_inflight``
    sized to admit the whole batch), primed with a discarded first query so
    every measured query runs warm.  Each level submits ``level`` identical
    queries at once and waits for all of them.
    """
    from repro.data import ParSSimDataset
    from repro.engines.pool import WarmPool
    from repro.viz.profile import DatasetProfile

    dataset = ParSSimDataset((grid, grid, grid), timesteps=2, species=2, seed=7)
    profile = DatasetProfile.measured(
        "concurrent", dataset, nchunks=8, nfiles=4, isovalue=0.35
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    app = IsosurfaceApp(
        profile,
        storage,
        width=image,
        height=image,
        algorithm="active",
        dataset=dataset,
        isovalue=0.35,
    )
    graph = app.graph("RE-Ra-M")
    placement = app.placement("RE-Ra-M", copies_per_host=copies)
    table = ResultTable(
        f"Extension: concurrent queries on one warm pool "
        f"({grid}^3 grid, {image}^2 frame, real wall-clock)",
        ["queries", "mean_latency", "batch_time", "throughput_qps"],
    )
    for level in levels:
        with WarmPool(
            graph, placement, policy="DD", max_inflight=max(level, 1)
        ) as pool:
            pool.run()  # prime: the cold first query is not measured
            start = time.perf_counter()
            pendings = [
                pool.submit({"timestep": q % dataset.timesteps})
                for q in range(level)
            ]
            metrics = [p.result() for p in pendings]
            batch = time.perf_counter() - start
        table.add(
            queries=level,
            mean_latency=mean(m.makespan for m in metrics),
            batch_time=batch,
            throughput_qps=level / batch,
        )
    table.notes.append(
        "real pipelines on a warm pool: same work-conserving shape as the "
        "simulated table, but measured in wall seconds on this machine"
    )
    return table


def main(argv: "Sequence[str] | None" = None) -> None:
    """Print this experiment's table (``--real`` for the warm-pool rerun)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--real", action="store_true",
        help="run the queries on a real warm pool instead of the simulator",
    )
    args = parser.parse_args(argv)
    print((run_real() if args.real else run()).format())


if __name__ == "__main__":
    main()
