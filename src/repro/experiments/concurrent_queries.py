"""Extension experiment — concurrent visualization queries.

The paper renders one query at a time; real visualization servers field
several users at once (its client/server motivation).  This extension runs
1..N identical isosurface queries *concurrently* on the same cluster via
:func:`repro.engines.simulated.run_concurrent` and reports per-query
latency and aggregate throughput.

Expected shape: processor sharing stretches each query's latency roughly
linearly with the multiprogramming level, while aggregate throughput stays
near flat (the cluster is work-conserving) — small batching gains appear
because independent queries overlap each other's I/O and network phases.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.data.storage import HostDisks, StorageMap
from repro.engines.simulated import SimulatedEngine, run_concurrent
from repro.experiments.common import ResultTable, mean
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.app import IsosurfaceApp
from repro.viz.profile import dataset_25gb

__all__ = ["run"]


def run(
    scale: float = 0.02,
    levels: Sequence[int] = (1, 2, 4),
    nodes: int = 8,
    image: int = 2048,
) -> ResultTable:
    """Run each multiprogramming level; one row per level."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Extension: concurrent queries on {nodes} Blue nodes, {profile.name}",
        ["queries", "mean_latency", "batch_time", "throughput_qps"],
    )
    names = [f"blue{i}" for i in range(nodes)]
    for level in levels:
        env = Environment()
        cluster = umd_testbed(
            env, red_nodes=0, blue_nodes=nodes, rogue_nodes=0, deathstar=False
        )
        storage = StorageMap.balanced(
            profile.files, [HostDisks(h, 2) for h in names]
        )
        engines = []
        for q in range(level):
            app = IsosurfaceApp(
                profile,
                storage,
                width=image,
                height=image,
                algorithm="active",
                timestep=q % profile.timesteps,
            )
            engines.append(
                SimulatedEngine(
                    cluster,
                    app.graph("RE-Ra-M"),
                    app.placement("RE-Ra-M", compute_hosts=names),
                    policy="DD",
                )
            )
        start = env.now
        results = run_concurrent(engines)
        batch = env.now - start
        table.add(
            queries=level,
            mean_latency=mean(m.makespan for m in results),
            batch_time=batch,
            throughput_qps=level / batch,
        )
    table.notes.append(
        "expected: latency grows with the multiprogramming level while "
        "aggregate throughput holds (work-conserving sharing); batching "
        "beats running the same queries back-to-back"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
