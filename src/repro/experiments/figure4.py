"""Figure 4 — ADR vs DataCutter on dedicated homogeneous nodes.

Paper setup: 1/2/4/8 dedicated Rogue nodes, the 25 GB dataset uniformly
partitioned over the nodes in use, RE-Ra-M configuration, 512x512 and
2048x2048 images.  Three systems: the original ADR, the DataCutter z-buffer
implementation ("DC Z-buffer"), and the DataCutter active-pixel
implementation ("DC Active Pixel").

Expected shape: ADR is the best (or tied) on few dedicated nodes — it is
tuned for exactly this case; DC Z-buffer is the worst but stays within
tens of percent; DC Active Pixel is about the same as ADR and wins as
nodes (and the 2048^2 merge volume) grow.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.adr.runtime import ADRRuntime
from repro.data.storage import HostDisks, StorageMap
from repro.experiments.common import ResultTable, mean, run_datacutter
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.profile import dataset_25gb

__all__ = ["run"]


def _rogue_cluster(nodes: int):
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=0, rogue_nodes=nodes, deathstar=False
    )
    return cluster, [f"rogue{i}" for i in range(nodes)]


def run(
    scale: float = 0.02,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    image_sizes: Sequence[int] = (512, 2048),
    timesteps: Sequence[int] = (0, 1),
) -> ResultTable:
    """Regenerate Figure 4 (as a table of absolute seconds per timestep)."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Figure 4: ADR vs DataCutter, homogeneous Rogue nodes, "
        f"{profile.name}",
        ["nodes", "image", "system", "seconds"],
    )
    for nodes in node_counts:
        for image in image_sizes:
            # ADR (z-buffer, its native accumulator model).
            cluster, names = _rogue_cluster(nodes)
            adr_times = [
                ADRRuntime(
                    cluster, names, profile, width=image, height=image, timestep=t
                )
                .run()
                .makespan
                for t in timesteps
            ]
            table.add(
                nodes=nodes, image=image, system="ADR", seconds=mean(adr_times)
            )
            # DataCutter: both algorithms, RE-Ra-M, DD policy.
            for algorithm, label in (
                ("zbuffer", "DC Z-buffer"),
                ("active", "DC Active Pixel"),
            ):
                cluster, names = _rogue_cluster(nodes)
                storage = StorageMap.balanced(
                    profile.files, [HostDisks(h, 2) for h in names]
                )
                metrics = run_datacutter(
                    cluster,
                    profile,
                    storage,
                    configuration="RE-Ra-M",
                    algorithm=algorithm,
                    policy="DD",
                    width=image,
                    height=image,
                    timesteps=timesteps,
                    compute_hosts=names,
                )
                table.add(
                    nodes=nodes,
                    image=image,
                    system=label,
                    seconds=mean(m.makespan for m in metrics),
                )
    table.notes.append(
        "paper shape: ADR best or tied at low node counts; DC Active Pixel "
        "similar to or faster than ADR from 2 nodes; DC Z-buffer slowest"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
