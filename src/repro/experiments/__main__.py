"""Run the full evaluation section: every table and figure, in order.

Usage::

    python -m repro.experiments [--charts] [--extensions]
"""

import argparse
import sys
import time

from repro.experiments import (
    concurrent_queries,
    dynamic_load,
    figure4,
    figure5,
    figure7,
    table1,
    table2,
    table3,
    table4,
    table5,
    validation,
)
from repro.experiments.charts import bar_chart

MODULES = [
    ("Table 1", table1, None),
    ("Table 2", table2, None),
    ("Figure 4", figure4, ("seconds", ["nodes", "image"], "system")),
    ("Figure 5", figure5, ("normalized", ["rogue+blue", "bg_jobs", "image"], "system")),
    ("Table 3", table3, None),
    ("Table 4", table4, None),
    ("Table 5", table5, None),
    ("Figure 7", figure7, ("seconds", ["skew", "policy"], "config")),
]

EXTENSIONS = [
    ("Dynamic load (extension)", dynamic_load, ("seconds", ["timestep"], "policy")),
    ("Concurrent queries (extension)", concurrent_queries, None),
    ("Cross-engine validation (extension)", validation, None),
]


def main(argv=None) -> int:
    """Print this experiment's table."""
    parser = argparse.ArgumentParser(prog="repro.experiments")
    parser.add_argument(
        "--charts", action="store_true",
        help="render the figures as ASCII bar charts too",
    )
    parser.add_argument(
        "--extensions", action="store_true",
        help="also run the beyond-the-paper extension experiments",
    )
    args = parser.parse_args(argv)

    modules = MODULES + (EXTENSIONS if args.extensions else [])
    for name, module, chart in modules:
        start = time.perf_counter()
        table = module.run()
        elapsed = time.perf_counter() - start
        print(table.format())
        if args.charts and chart is not None:
            value, labels, series = chart
            print()
            print(bar_chart(table, value, labels, series))
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
