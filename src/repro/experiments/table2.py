"""Table 2 — per-filter processing time and share of total.

Same setup as Table 1 (four isolated filters, 1.5 GB dataset, 2048x2048
image).  The paper reports, per filter, the processing time in seconds and
its percentage of the pipeline's total: R 0.68 s (5.3 %), E 1.65 s
(13.0 %), Ra 9.43 s (74.5 %), M 0.90 s (7.1 %) for z-buffer, and a
slightly more expensive Raster for active pixel.

Expected shape: Raster dominates (~3/4 of all filter time); Read is
cheapest; active pixel shifts a little more work into Ra and less into M.
"""

from __future__ import annotations

from repro.experiments.common import ResultTable
from repro.experiments.table1 import baseline_pipeline
from repro.viz.profile import dataset_1p5gb

__all__ = ["run"]

_FILTERS = ("R", "E", "Ra", "M")


def run(scale: float = 0.1, width: int = 2048, height: int = 2048) -> ResultTable:
    """Regenerate Table 2 at the given dataset scale."""
    profile = dataset_1p5gb(scale=scale)
    table = ResultTable(
        f"Table 2: filter processing times, {profile.name}, "
        f"{width}x{height} image",
        ["algorithm", "filter", "seconds", "percent"],
    )
    for algorithm in ("zbuffer", "active"):
        metrics = baseline_pipeline(profile, algorithm, width, height)
        # Processing time = CPU busy time, plus disk time for the Read
        # filter (its work is I/O-dominated).
        times = {
            name: metrics.filter_busy_time(name) + metrics.filter_io_time(name)
            for name in _FILTERS
        }
        total = sum(times.values())
        for name in _FILTERS:
            table.add(
                algorithm=algorithm,
                filter=name,
                seconds=times[name],
                percent=100.0 * times[name] / total,
            )
    table.notes.append(
        "paper (full scale, zbuffer): R 0.68s/5.3%  E 1.65s/13.0%  "
        "Ra 9.43s/74.5%  M 0.90s/7.1%  (sum 12.66s)"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
