"""Extension — cross-engine validation report.

The trust argument for the simulation substrate, as a runnable artifact:
render one small dataset through the *real* threaded pipeline and replay
the same scenario through the *simulated* engine, then report where the two
agree exactly (deterministic byte totals) and where the simulation is a
calibrated estimate (active-pixel volume, timings).

Also checks the paper's output-consistency requirement: every
configuration, algorithm and copy count must produce the same image.
"""

from __future__ import annotations

import hashlib

from repro.data.parssim import ParSSimDataset
from repro.data.storage import HostDisks, StorageMap
from repro.engines.simulated import SimulatedEngine
from repro.engines.threaded import ThreadedEngine
from repro.experiments.common import ResultTable
from repro.sim.cluster import homogeneous_cluster
from repro.sim.kernel import Environment
from repro.viz.app import IsosurfaceApp
from repro.viz.profile import DatasetProfile

__all__ = ["run"]


def _image_digest(image) -> str:
    return hashlib.sha256(image.tobytes()).hexdigest()[:12]


def run(grid: int = 17, image: int = 64, isovalue: float = 0.35) -> ResultTable:
    """Render and replay one scenario; report agreement per quantity."""
    dataset = ParSSimDataset((grid, grid, grid), timesteps=1, species=1, seed=17)
    profile = DatasetProfile.measured(
        "validation", dataset, nchunks=8, nfiles=4, isovalue=isovalue
    )
    table = ResultTable(
        f"Extension: cross-engine validation, {grid}^3 grid, "
        f"{image}^2 image, iso={isovalue}",
        ["quantity", "threaded", "simulated", "agreement"],
    )

    digests = {}
    for algorithm in ("zbuffer", "active"):
        # Real pipeline.
        storage = StorageMap.balanced(profile.files, [HostDisks("node0")])
        app = IsosurfaceApp(
            profile, storage, width=image, height=image, algorithm=algorithm,
            dataset=dataset, isovalue=isovalue,
        )
        real_graph = app.graph("R-E-Ra-M")
        real = ThreadedEngine(
            real_graph, app.placement("R-E-Ra-M")
        ).run().validate(real_graph)
        digests[algorithm] = _image_digest(real.result.image)
        # Simulated replay.
        env = Environment()
        cluster = homogeneous_cluster(env, nodes=1)
        storage = StorageMap.balanced(profile.files, [HostDisks("node0", 2)])
        sim_app = IsosurfaceApp(
            profile, storage, width=image, height=image, algorithm=algorithm
        )
        sim_graph = sim_app.graph("R-E-Ra-M")
        sim = SimulatedEngine(
            cluster, sim_graph, sim_app.placement("R-E-Ra-M"),
            policy="RR",
        ).run().validate(sim_graph)
        for stream, label in (
            ("R->E", "voxel bytes"),
            ("E->Ra", "triangle bytes"),
            ("Ra->M", "merge bytes"),
        ):
            t_bytes = real.stream_totals(stream)[1]
            s_bytes = sim.stream_totals(stream)[1]
            exact = t_bytes == s_bytes
            table.add(
                quantity=f"{algorithm}: {label}",
                threaded=t_bytes,
                simulated=s_bytes,
                agreement="exact" if exact else
                f"estimate ({s_bytes / max(t_bytes, 1):.2f}x)",
            )
        # Metrics parity: both engines must time-stamp every copy's finish.
        t_done = sum(1 for c in real.copies if c.finished_at > 0)
        s_done = sum(1 for c in sim.copies if c.finished_at > 0)
        table.add(
            quantity=f"{algorithm}: copies with finish time",
            threaded=f"{t_done}/{len(real.copies)}",
            simulated=f"{s_done}/{len(sim.copies)}",
            agreement="exact"
            if t_done == len(real.copies) and s_done == len(sim.copies)
            else "MISMATCH",
        )

    table.add(
        quantity="image digest (zbuffer vs active)",
        threaded=digests["zbuffer"],
        simulated=digests["active"],
        agreement="exact" if digests["zbuffer"] == digests["active"]
        else "MISMATCH",
    )
    table.notes.append(
        "voxel/triangle/zbuffer-merge bytes are exact across engines; the "
        "active-pixel merge volume is a fragments-per-triangle estimate"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
