"""Experiment generators: one module per table/figure in the paper.

Each module exposes ``run(scale=..., ...) -> ResultTable`` and a ``main()``
that prints it; ``python -m repro.experiments`` runs the whole evaluation
section.  See DESIGN.md for the per-experiment index and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.experiments.common import ResultTable, mean, run_datacutter

__all__ = ["ResultTable", "mean", "run_datacutter"]
