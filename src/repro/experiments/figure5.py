"""Figure 5 — heterogeneity from background jobs: ADR vs DataCutter.

Paper setup: half Rogue + half Blue nodes (2+2, 4+4, 8+8); a varying number
of equal-priority background jobs (0/1/4/16) on every Rogue node, Blue
dedicated; the 25 GB dataset uniformly partitioned over all nodes in use;
RE-Ra-M with the DD policy; 512^2 and 2048^2 images.  Bars are normalised
to the original ADR time for the same point.

Expected shape: with low background load ADR wins (homogeneous-like);
as jobs grow ADR degrades sharply — its static partition cannot offload
the loaded Rogue nodes — while both DataCutter versions stay nearly flat,
so their normalised bars fall well below 1.  The effect is stronger for
2048^2 (more Raster work to move).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.adr.runtime import ADRRuntime
from repro.core.instrument import RunMetrics
from repro.data.storage import HostDisks, StorageMap
from repro.experiments.common import ResultTable, mean, run_datacutter
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.profile import DatasetProfile, dataset_25gb

__all__ = ["run", "heterogeneous_run"]


def _mixed_cluster(per_side: int, background_jobs: int):
    """``per_side`` Rogue + ``per_side`` Blue nodes; jobs on every Rogue."""
    env = Environment()
    cluster = umd_testbed(
        env,
        red_nodes=0,
        blue_nodes=per_side,
        rogue_nodes=per_side,
        deathstar=False,
    )
    rogue = [f"rogue{i}" for i in range(per_side)]
    blue = [f"blue{i}" for i in range(per_side)]
    cluster.set_background_load(background_jobs, hosts=rogue)
    return cluster, rogue, blue


def heterogeneous_run(
    profile: DatasetProfile,
    per_side: int,
    background_jobs: int,
    image: int,
    algorithm: str,
    timesteps: Sequence[int],
    policy: str = "DD",
) -> list[RunMetrics]:
    """One DataCutter point of the Figure 5 grid (also feeds Table 3)."""
    cluster, rogue, blue = _mixed_cluster(per_side, background_jobs)
    nodes = rogue + blue
    storage = StorageMap.balanced(
        profile.files,
        [HostDisks(h, 2) for h in nodes],
    )
    return run_datacutter(
        cluster,
        profile,
        storage,
        configuration="RE-Ra-M",
        algorithm=algorithm,
        policy=policy,
        width=image,
        height=image,
        timesteps=timesteps,
        compute_hosts=nodes,
        merge_host=blue[0],  # merge on a dedicated (unloaded) node
    )


def run(
    scale: float = 0.02,
    per_side_counts: Sequence[int] = (2, 4, 8),
    background_levels: Sequence[int] = (0, 1, 4, 16),
    image_sizes: Sequence[int] = (512, 2048),
    timesteps: Sequence[int] = (0,),
) -> ResultTable:
    """Regenerate Figure 5 (normalised-to-ADR execution times)."""
    profile = dataset_25gb(scale=scale)
    table = ResultTable(
        f"Figure 5: background-load heterogeneity, Rogue+Blue, {profile.name}",
        ["rogue+blue", "bg_jobs", "image", "system", "seconds", "normalized"],
    )
    for per_side in per_side_counts:
        for image in image_sizes:
            for jobs in background_levels:
                cluster, rogue, blue = _mixed_cluster(per_side, jobs)
                adr_times = [
                    ADRRuntime(
                        cluster,
                        rogue + blue,
                        profile,
                        width=image,
                        height=image,
                        timestep=t,
                    )
                    .run()
                    .makespan
                    for t in timesteps
                ]
                adr = mean(adr_times)
                label = f"{per_side}+{per_side}"
                table.add(
                    **{"rogue+blue": label},
                    bg_jobs=jobs,
                    image=image,
                    system="ADR",
                    seconds=adr,
                    normalized=1.0,
                )
                for algorithm, name in (
                    ("zbuffer", "DC Z-buffer"),
                    ("active", "DC Active Pixel"),
                ):
                    metrics = heterogeneous_run(
                        profile, per_side, jobs, image, algorithm, timesteps
                    )
                    seconds = mean(m.makespan for m in metrics)
                    table.add(
                        **{"rogue+blue": label},
                        bg_jobs=jobs,
                        image=image,
                        system=name,
                        seconds=seconds,
                        normalized=seconds / adr,
                    )
    table.notes.append(
        "paper shape: ADR (=1.0) degrades with bg jobs; both DC versions "
        "stay nearly flat, so their normalised values drop below 1 as load "
        "grows; ADR wins only at low load with many nodes"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
