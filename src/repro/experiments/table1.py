"""Table 1 — buffers and data volume per stream, z-buffer vs active pixel.

Paper setup: the four filters isolated on four separate hosts, the 1.5 GB
dataset, a 2048x2048 output image.  The table reports the number of buffers
and megabytes carried by the R->E, E->Ra and Ra->M streams for the two
hidden-surface-removal algorithms.

Expected shape: identical R->E and E->Ra traffic; Ra->M carries exactly
``W*H*8`` bytes in few large buffers for z-buffer, and many smaller buffers
with (usually) less total volume for active pixel.
"""

from __future__ import annotations

from repro.core.placement import Placement
from repro.data.storage import HostDisks, StorageMap
from repro.engines.simulated import SimulatedEngine
from repro.experiments.common import ResultTable
from repro.sim.cluster import umd_testbed
from repro.sim.kernel import Environment
from repro.viz.app import IsosurfaceApp
from repro.viz.profile import dataset_1p5gb

__all__ = ["run", "baseline_pipeline"]


def baseline_pipeline(profile, algorithm: str, width: int, height: int, timestep: int = 0):
    """The Tables 1-2 baseline: R, E, Ra, M each isolated on its own host.

    Returns the run's :class:`~repro.core.instrument.RunMetrics`.
    """
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=0, rogue_nodes=4, deathstar=False
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("rogue0", 2)])
    app = IsosurfaceApp(
        profile, storage, width=width, height=height, algorithm=algorithm,
        timestep=timestep,
    )
    graph = app.graph("R-E-Ra-M")
    placement = (
        Placement()
        .place("R", ["rogue0"])
        .place("E", ["rogue1"])
        .place("Ra", ["rogue2"])
        .place("M", ["rogue3"])
    )
    return SimulatedEngine(cluster, graph, placement, policy="RR").run()


def run(scale: float = 0.1, width: int = 2048, height: int = 2048) -> ResultTable:
    """Regenerate Table 1 at the given dataset scale."""
    profile = dataset_1p5gb(scale=scale)
    table = ResultTable(
        f"Table 1: stream traffic, R-E-Ra-M on 4 hosts, {profile.name}, "
        f"{width}x{height} image",
        ["algorithm", "stream", "buffers", "MB"],
    )
    for algorithm in ("zbuffer", "active"):
        metrics = baseline_pipeline(profile, algorithm, width, height)
        for stream in ("R->E", "E->Ra", "Ra->M"):
            buffers, nbytes = metrics.stream_totals(stream)
            table.add(
                algorithm=algorithm,
                stream=stream,
                buffers=buffers,
                MB=nbytes / 1e6,
            )
    table.notes.append(
        "paper (full scale): R->E 443 buf/38.6 MB; E->Ra 470 buf/11.8 MB; "
        "Ra->M 16 buf/32.0 MB (zbuffer) vs 469 buf/28.5 MB (active)"
    )
    return table


def main() -> None:
    """Print this experiment's table."""
    print(run().format())


if __name__ == "__main__":
    main()
