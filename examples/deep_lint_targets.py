#!/usr/bin/env python
"""Deep-lint targets: the four isosurface configurations, as lint inputs.

Exposes :func:`targets`, a zero-arg builder returning one ``(graph,
placement)`` pair per IsosurfaceApp configuration (R-E-Ra-M, RE-Ra-M,
R-ERa-M, RERa-M) on a small synthetic dataset profile.  CI runs the full
analyzer — including the effect-inference, resource-dataflow and
protocol model-checker passes — over all four with::

    PYTHONPATH=src:examples python -m repro.cli lint --deep \\
        --graph-module deep_lint_targets:targets

The graphs are sim-only (no real dataset on disk is needed): the deep
passes read the declared metadata and the *real* filter factories'
source, neither of which requires running anything.
"""

from repro.data import HostDisks, StorageMap
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile

CONFIGS = ("R-E-Ra-M", "RE-Ra-M", "R-ERa-M", "RERa-M")
HOSTS = ("h0", "h1")


def make_app() -> IsosurfaceApp:
    """One small synthetic app shared by all four configurations."""
    profile = DatasetProfile.synthetic(
        "deep-lint",
        (16, 16, 16),
        nchunks=8,
        nfiles=4,
        timesteps=1,
        total_triangles=500,
    )
    storage = StorageMap.balanced(
        profile.files, [HostDisks(h) for h in HOSTS]
    )
    return IsosurfaceApp(profile, storage, width=32, height=32)


def targets():
    """(graph, placement) per configuration — the lint CLI's input shape."""
    app = make_app()
    return [
        (
            app.graph(config),
            app.placement(config, compute_hosts=list(HOSTS)),
        )
        for config in CONFIGS
    ]


if __name__ == "__main__":
    for (graph, placement), config in zip(targets(), CONFIGS):
        print(f"{config}: {len(graph.filters)} filters, "
              f"{len(graph.streams)} streams, "
              f"{len(placement.placed_filters())} placed")
