#!/usr/bin/env python
"""Client for the ``repro serve`` isosurface query service.

Start the server in one terminal::

    python -m repro.cli serve --grid 33 --image 256

then issue queries from another::

    python examples/serve_client.py --isovalue 0.4 --timestep 1 \
        --azimuth 60 --elevation 30 --out frame.ppm
    python examples/serve_client.py --stats
    python examples/serve_client.py --shutdown

The protocol is newline-delimited JSON over TCP (see ``repro.serve``);
frames come back as base64-encoded binary PPM.  Run it twice with the same
parameters to see the warm-pool effect: the first query cold-builds the
pool, the second reports ``warm: true`` and a far lower latency.
"""

import argparse
import base64
import json
import socket
import sys


def request(host: str, port: int, payload: dict, timeout: float = 300.0) -> dict:
    """Send one JSON-lines request and return the decoded response."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        with sock.makefile("rb") as fh:
            line = fh.readline()
    if not line:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(line)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642)
    parser.add_argument("--isovalue", type=float, default=None)
    parser.add_argument("--timestep", type=int, default=None)
    parser.add_argument("--azimuth", type=float, default=None,
                        help="camera orbit azimuth (degrees)")
    parser.add_argument("--elevation", type=float, default=None,
                        help="camera orbit elevation (degrees)")
    parser.add_argument("--dataset", default=None, help="scene name")
    parser.add_argument("--trace", action="store_true",
                        help="ask for a per-query trace summary")
    parser.add_argument("--out", default="frame.ppm",
                        help="where to write the rendered frame")
    parser.add_argument("--stats", action="store_true",
                        help="print service statistics instead of querying")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to shut down")
    args = parser.parse_args()

    if args.stats:
        print(json.dumps(request(args.host, args.port, {"cmd": "stats"}),
                         indent=2))
        return 0
    if args.shutdown:
        print(request(args.host, args.port, {"cmd": "shutdown"}))
        return 0

    payload = {"cmd": "query", "trace": args.trace}
    if args.dataset is not None:
        payload["dataset"] = args.dataset
    if args.isovalue is not None:
        payload["isovalue"] = args.isovalue
    if args.timestep is not None:
        payload["timestep"] = args.timestep
    if args.azimuth is not None or args.elevation is not None:
        view = {}
        if args.azimuth is not None:
            view["azimuth"] = args.azimuth
        if args.elevation is not None:
            view["elevation"] = args.elevation
        payload["view"] = view

    response = request(args.host, args.port, payload)
    if not response.get("ok"):
        print(f"query failed: {response.get('error')}", file=sys.stderr)
        return 1
    with open(args.out, "wb") as fh:
        fh.write(base64.b64decode(response.pop("frame_b64")))
    print(
        f"{response['dataset']} iso={response['isovalue']} "
        f"t={response['timestep']}: {response['active_pixels']} active "
        f"pixels, {response['latency_s'] * 1e3:.1f} ms "
        f"({'warm' if response['warm'] else 'cold'}) -> {args.out}"
    )
    cache = response.get("cache")
    if cache and cache.get("mode") != "off":
        tiers = " ".join(
            f"{tier}={cache[tier]}"
            for tier in ("negative", "triangles", "tiles")
            if tier in cache
        )
        print(
            f"cache: mode={cache['mode']} {tiers} "
            f"saved={cache.get('bytes_saved', 0)}".rstrip()
        )
    if "trace" in response:
        print(f"trace: {response['trace']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
