#!/usr/bin/env python
"""Skewed storage: how filter decomposition interacts with data placement.

Recreates the Figure 7 scenario: two Blue + two Rogue nodes hold the
dataset; a growing fraction of the Blue files migrates to the Rogue nodes
(space pressure, in the paper's motivation).  Three decompositions of the
same application race under the Demand-Driven policy:

- RERa-M  - everything combined: pure SPMD, the node with the most data
            gates the run;
- R-ERa-M - retrieval decoupled: slow-node data can be processed elsewhere;
- RE-Ra-M - retrieval+extraction local, rasterisation free-floating: least
            data on the wire, best overall.

Run:  python examples/skewed_storage.py
"""

from repro.data import HostDisks, StorageMap
from repro.experiments.common import run_datacutter
from repro.sim import Environment, umd_testbed
from repro.viz.profile import dataset_25gb

BLUE = ["blue0", "blue1"]
ROGUE = ["rogue0", "rogue1"]
CONFIGS = ("RERa-M", "R-ERa-M", "RE-Ra-M")


def main() -> None:
    profile = dataset_25gb(scale=0.02)
    print(f"dataset: {profile.name}")
    header = " ".join(f"{c:>9}" for c in CONFIGS)
    print(f"{'skew':>6} {header}   (seconds, DD policy)")
    for skew in (0.0, 0.25, 0.5, 0.75):
        times = []
        for config in CONFIGS:
            env = Environment()
            cluster = umd_testbed(
                env, red_nodes=0, blue_nodes=2, rogue_nodes=2, deathstar=False
            )
            storage = StorageMap.balanced(
                profile.files, [HostDisks(h, 2) for h in BLUE + ROGUE]
            )
            if skew:
                storage = storage.skew(
                    BLUE, [HostDisks(h, 2) for h in ROGUE], skew
                )
            [metrics] = run_datacutter(
                cluster,
                profile,
                storage,
                configuration=config,
                algorithm="active",
                policy="DD",
                width=2048,
                height=2048,
                compute_hosts=BLUE + ROGUE,
                merge_host="blue0",
            )
            times.append(metrics.makespan)
        row = " ".join(f"{t:>9.2f}" for t in times)
        print(f"{int(skew * 100):>5}% {row}")
    print(
        "\nThe combined RERa-M configuration tracks the skew directly; the "
        "decoupled\nconfigurations let data retrieved on overloaded disks be "
        "processed elsewhere."
    )


if __name__ == "__main__":
    main()
