#!/usr/bin/env python
"""Process-parallel rendering: transparent copies on real cores.

The threaded engine proves the protocol but shares one interpreter, so
copies of a compute-bound Raster filter time-slice a single core.  This
example renders the same isosurface scene through the threaded engine and
through the process engine (one OS process per copy, payloads in shared
memory) and compares wall time — on a multicore machine the process engine
approaches the paper's transparent-copy speedups, and the images are
bit-identical.

Run:  python examples/process_parallel.py [--copies N] [--image W]
"""

import argparse
import time

import numpy as np

from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import ProcessEngine, ThreadedEngine
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile


def build(args):
    dataset = ParSSimDataset((args.grid,) * 3, timesteps=1, species=2, seed=11)
    isovalue = 0.3
    profile = DatasetProfile.measured(
        "procdemo", dataset, nchunks=27, nfiles=8, isovalue=isovalue
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    app = IsosurfaceApp(
        profile,
        storage,
        width=args.image,
        height=args.image,
        algorithm="zbuffer",
        dataset=dataset,
        isovalue=isovalue,
    )
    return app, profile


def run(engine_cls, args):
    app, profile = build(args)
    graph = app.graph("R-E-Ra-M")
    placement = app.placement(
        "R-E-Ra-M", compute_hosts=["host0"], copies_per_host=args.copies
    )
    t0 = time.perf_counter()
    metrics = engine_cls(graph, placement, policy="DD").run()
    wall = time.perf_counter() - t0
    metrics.validate(graph)
    return metrics, wall, profile.total_triangles(0)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--grid", type=int, default=33, help="grid points per axis")
    ap.add_argument("--image", type=int, default=192, help="image size (pixels)")
    ap.add_argument("--copies", type=int, default=4,
                    help="transparent Extract/Raster copies")
    args = ap.parse_args()

    mt, wall_t, tris = run(ThreadedEngine, args)
    mp_, wall_p, _ = run(ProcessEngine, args)

    assert np.array_equal(mt.result.image, mp_.result.image), "images diverged"
    print(f"scene     : {tris} triangles, {args.image}x{args.image} image, "
          f"{args.copies} copies per stage")
    print(f"threaded  : {wall_t:.3f} s  ({tris / wall_t:,.0f} triangles/s)")
    print(f"process   : {wall_p:.3f} s  ({tris / wall_p:,.0f} triangles/s)")
    print(f"speedup   : {wall_t / wall_p:.2f}x  (images bit-identical)")


if __name__ == "__main__":
    main()
