#!/usr/bin/env python
"""Heterogeneous scheduling: transparent copies + DD vs a static SPMD runtime.

Recreates the paper's core demonstration (Section 4.2) on the simulated UMD
testbed: four Rogue + four Blue nodes render timesteps of the 25 GB dataset
while the Rogue nodes carry a rising number of equal-priority background
jobs.  Three systems run the same query:

- ADR            - static partitioning, tuned SPMD (the baseline);
- DC RR          - DataCutter pipeline, Round-Robin buffer routing;
- DC DD          - DataCutter pipeline, Demand-Driven routing.

Run:  python examples/heterogeneous_scheduling.py
"""

from repro.adr import ADRRuntime
from repro.data import HostDisks, StorageMap
from repro.experiments.common import run_datacutter
from repro.sim import Environment, umd_testbed
from repro.viz.profile import dataset_25gb

ROGUE = [f"rogue{i}" for i in range(4)]
BLUE = [f"blue{i}" for i in range(4)]


def build_cluster(background_jobs: int):
    env = Environment()
    cluster = umd_testbed(
        env, red_nodes=0, blue_nodes=4, rogue_nodes=4, deathstar=False
    )
    cluster.set_background_load(background_jobs, hosts=ROGUE)
    return cluster


def main() -> None:
    profile = dataset_25gb(scale=0.02)
    print(f"dataset: {profile.name}, "
          f"{profile.bytes_per_timestep / 1e6:.0f} MB/timestep")
    print(f"{'bg jobs':>8} {'ADR':>8} {'DC RR':>8} {'DC DD':>8}   (seconds)")
    for jobs in (0, 1, 4, 16):
        cluster = build_cluster(jobs)
        adr = ADRRuntime(
            cluster, ROGUE + BLUE, profile, width=2048, height=2048
        ).run().makespan

        times = {}
        for policy in ("RR", "DD"):
            cluster = build_cluster(jobs)
            storage = StorageMap.balanced(
                profile.files, [HostDisks(h, 2) for h in ROGUE + BLUE]
            )
            [metrics] = run_datacutter(
                cluster,
                profile,
                storage,
                configuration="RE-Ra-M",
                algorithm="active",
                policy=policy,
                width=2048,
                height=2048,
                compute_hosts=ROGUE + BLUE,
                merge_host=BLUE[0],
            )
            times[policy] = metrics.makespan
        print(
            f"{jobs:>8} {adr:>8.2f} {times['RR']:>8.2f} {times['DD']:>8.2f}"
        )
    print(
        "\nADR degrades with load (static partitioning cannot offload the "
        "loaded nodes);\nthe DataCutter pipeline stays nearly flat, and DD "
        "routes buffers to whichever\ncopies are actually consuming them."
    )


if __name__ == "__main__":
    main()
