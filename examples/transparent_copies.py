#!/usr/bin/env python
"""Transparent copies: scaling the bottleneck filter, and the Merge limit.

The paper's central mechanism: the Raster filter dominates the pipeline
(Table 2), so execute more transparent copies of it.  This example scales
Raster copies across the simulated Blue cluster and shows (a) the speedup,
(b) the Merge filter gradually becoming the bottleneck (the paper's
Conclusions), and (c) the proposed fix — partitioning the image space among
the raster filters so no Merge is needed.

Run:  python examples/transparent_copies.py
"""

from repro.core.placement import Placement
from repro.data import HostDisks, StorageMap
from repro.engines import SimulatedEngine
from repro.sim import Environment, umd_testbed
from repro.viz import IsosurfaceApp
from repro.viz.partitioned import build_partitioned_graph
from repro.viz.profile import dataset_1p5gb

NODES = [f"blue{i}" for i in range(8)]


def build(profile):
    env = Environment()
    cluster = umd_testbed(env, red_nodes=0, blue_nodes=8, rogue_nodes=0,
                          deathstar=False)
    storage = StorageMap.balanced(
        profile.files, [HostDisks(h, 2) for h in NODES[:4]]
    )
    return cluster, storage


def main() -> None:
    profile = dataset_1p5gb(scale=0.2)
    print(f"dataset: {profile.name}, {profile.total_triangles(0)} triangles")

    print("\n-- scaling transparent Raster copies (RE-Ra-M, DD, 2048^2) --")
    print(f"{'Ra copies':>10} {'seconds':>9} {'merge busy s':>13}")
    for hosts in (1, 2, 4, 8):
        cluster, storage = build(profile)
        app = IsosurfaceApp(
            profile, storage, width=2048, height=2048, algorithm="active"
        )
        graph = app.graph("RE-Ra-M")
        placement = app.placement(
            "RE-Ra-M", compute_hosts=NODES[:hosts], merge_host=NODES[-1]
        )
        metrics = SimulatedEngine(
            cluster, graph, placement, policy="DD"
        ).run().validate(graph)
        merge_busy = metrics.filter_busy_time("M")
        print(f"{hosts:>10} {metrics.makespan:>9.2f} {merge_busy:>13.2f}")

    print("\n-- eliminating Merge: image-partitioned raster filters --")
    cluster, storage = build(profile)
    graph = build_partitioned_graph(
        profile, storage, timestep=0, width=2048, height=2048, regions=8
    )
    placement = Placement().spread("RE", NODES[:4])
    for region in range(8):
        placement.place(f"Ra{region}", [NODES[region]])
    metrics = SimulatedEngine(
        cluster, graph, placement, policy="RR"
    ).run().validate(graph)
    print(f"partitioned over 8 strip owners: {metrics.makespan:.2f} s")
    print(
        "\nWith few copies the single Merge is harmless; as copies grow it "
        "concentrates\nall WPA traffic on one node.  Partitioning the image "
        "removes that bottleneck\nat the price of screen-space load balance "
        "(see benchmarks/test_ablation_image_partition.py)."
    )


if __name__ == "__main__":
    main()
