#!/usr/bin/env python
"""Units of work: rendering an animation, one UOW per viewing direction.

The paper defines a unit-of-work as "rendering of a simulation dataset from
a particular viewing direction", with every filter running its
init/process/finalize cycle per UOW on a *persistent* instance.  This
example uses exactly that protocol — ``ThreadedEngine.run_cycles`` with one
``{"camera": ...}`` descriptor per frame — to render a ring of camera
angles and write the frames as PPM files.

Run:  python examples/animation_uows.py
"""

import math
from pathlib import Path

import numpy as np

from repro.data import HostDisks, ParSSimDataset, StorageMap
from repro.engines import ThreadedEngine
from repro.viz import Camera, IsosurfaceApp
from repro.viz.profile import DatasetProfile

FRAMES = 6
SIZE = 128


def orbit_camera(shape, frame: int, width: int, height: int) -> Camera:
    """A camera orbiting the grid centre in the horizontal plane."""
    nz, ny, nx = shape
    angle = 2.0 * math.pi * frame / FRAMES
    direction = (math.cos(angle), math.sin(angle), 0.6)
    return Camera.fit_grid(shape, width=width, height=height, direction=direction)


def main() -> None:
    dataset = ParSSimDataset((25, 25, 25), timesteps=1, seed=13)
    isovalue = 0.3
    profile = DatasetProfile.measured(
        "anim", dataset, nchunks=8, nfiles=4, isovalue=isovalue
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    out_dir = Path(__file__).resolve().parent
    print(f"rendering {FRAMES} viewing directions "
          f"({profile.total_triangles(0)} triangles each)...")

    app = IsosurfaceApp(
        profile, storage, width=SIZE, height=SIZE, algorithm="active",
        dataset=dataset, isovalue=isovalue,
    )
    graph = app.graph("RE-Ra-M")
    placement = app.placement("RE-Ra-M", copies_per_host=2)
    engine = ThreadedEngine(graph, placement, policy="DD")
    uows = [
        {"camera": orbit_camera(profile.grid_shape, frame, SIZE, SIZE)}
        for frame in range(FRAMES)
    ]
    runs = engine.run_cycles(uows)  # one work cycle per viewing direction
    for frame, metrics in enumerate(runs):
        image = metrics.result.image
        path = out_dir / f"frame_{frame:02d}.ppm"
        with open(path, "wb") as fh:
            fh.write(f"P6 {SIZE} {SIZE} 255\n".encode())
            fh.write(image.tobytes())
        occupancy = np.count_nonzero(image.any(axis=2)) / (SIZE * SIZE)
        print(f"  frame {frame}: {metrics.result.active_pixels} active "
              f"pixels ({occupancy:.1%} of frame) -> {path.name}")
    print("done; view the frames with any PPM-capable viewer")


if __name__ == "__main__":
    main()
