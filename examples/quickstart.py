#!/usr/bin/env python
"""Quickstart: render an isosurface through a real DataCutter-style pipeline.

Builds a small synthetic reactive-transport dataset, declusters it into
real binary files on disk with the Hilbert-curve algorithm, runs the
RE-Ra-M filter pipeline with two transparent Raster copies under the
Demand-Driven policy (the Read stage streams chunks from those files), and
writes the rendered image to ``quickstart.ppm``.

Run:  python examples/quickstart.py [--engine threaded|process]

``--engine process`` runs each copy in its own OS process (payloads travel
through shared memory); the rendered image is bit-identical either way.
"""

import argparse
import tempfile
from pathlib import Path

from repro.core.tracing import Tracer
from repro.data import DeclusteredStore, HostDisks, ParSSimDataset, StorageMap
from repro.engines import ProcessEngine, ThreadedEngine
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile


def write_ppm(path: Path, image) -> None:
    """Save an (h, w, 3) uint8 image as a binary PPM."""
    height, width, _ = image.shape
    with open(path, "wb") as fh:
        fh.write(f"P6 {width} {height} 255\n".encode())
        fh.write(image.tobytes())


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--engine", default="threaded", choices=["threaded", "process"],
        help="run copies as threads, or as one OS process each",
    )
    args = ap.parse_args()
    engine_cls = ProcessEngine if args.engine == "process" else ThreadedEngine

    # 1. A synthetic ParSSim-like dataset: chemical plumes advecting
    #    through a 33^3 grid over 3 stored timesteps.
    dataset = ParSSimDataset((33, 33, 33), timesteps=3, species=2, seed=7)
    isovalue = 0.3
    print(f"dataset: {dataset}")

    # 2. Chunk + decluster it (Hilbert order, 8 files), materialise the
    #    declustered files on disk, and place them on one logical host.
    profile = DatasetProfile.measured(
        "quickstart", dataset, nchunks=27, nfiles=8, isovalue=isovalue
    )
    store_dir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    store = DeclusteredStore.write(dataset, profile, store_dir)
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    print(
        f"profile: {len(profile.chunks)} chunks in {len(profile.files)} "
        f"files ({store.total_bytes() / 1e3:.0f} kB on disk at {store_dir}),"
        f" {profile.total_triangles(0)} triangles at iso={isovalue}"
    )

    # 3. Build the RE-Ra-M pipeline (active-pixel rendering) and run it
    #    with two transparent Raster copies, Demand-Driven routing.  The
    #    Read stage streams chunk data from the on-disk store.
    app = IsosurfaceApp(
        profile,
        storage,
        width=256,
        height=256,
        algorithm="active",
        dataset=store,
        isovalue=isovalue,
    )
    graph = app.graph("RE-Ra-M")
    placement = app.placement(
        "RE-Ra-M", compute_hosts=["host0"], copies_per_host=2
    )
    tracer = Tracer()
    metrics = engine_cls(graph, placement, policy="DD", tracer=tracer).run()
    metrics.validate(graph)  # counter conservation: books must balance

    # 4. Inspect the run: stream totals, DD overhead, per-copy timeline.
    result = metrics.result
    print(f"rendered {result.active_pixels} active pixels")
    for stream in ("RE->Ra", "Ra->M"):
        buffers, nbytes = metrics.stream_totals(stream)
        print(f"stream {stream}: {buffers} buffers, {nbytes / 1e3:.1f} kB")
    print(
        f"DD overhead: {metrics.ack_messages} acks, "
        f"{metrics.ack_bytes / 1e3:.1f} kB on the wire"
    )
    print()
    print(tracer.timeline(width=48))
    out = Path(__file__).resolve().parent / "quickstart.ppm"
    write_ppm(out, result.image)
    print(f"image written to {out}")


if __name__ == "__main__":
    main()
