#!/usr/bin/env python
"""Second workload family: isosurfaces of a turbulence-like random field.

The paper's plumes give compact, shell-shaped isosurfaces; this example
renders the opposite extreme — a space-filling, wrinkled level set of a
spectral Gaussian random field — through the same pipeline, and compares
the two workloads' stream profiles (triangles per chunk are spread out
instead of concentrated, which changes what the writer policies see).

Run:  python examples/spectral_turbulence.py
"""

from pathlib import Path

import numpy as np

from repro.data import HostDisks, ParSSimDataset, SpectralDataset, StorageMap
from repro.engines import ThreadedEngine
from repro.viz import IsosurfaceApp
from repro.viz.profile import DatasetProfile

GRID = 33
SIZE = 192


def render(dataset, isovalue, name):
    profile = DatasetProfile.measured(
        name, dataset, nchunks=27, nfiles=8, isovalue=isovalue
    )
    storage = StorageMap.balanced(profile.files, [HostDisks("host0")])
    app = IsosurfaceApp(
        profile, storage, width=SIZE, height=SIZE, algorithm="active",
        dataset=dataset, isovalue=isovalue,
    )
    metrics = ThreadedEngine(
        app.graph("RE-Ra-M"),
        app.placement("RE-Ra-M", copies_per_host=2),
        policy="DD",
    ).run()
    counts = profile.tri_counts[0]
    spread = counts.std() / max(counts.mean(), 1)
    return metrics, profile, spread


def main() -> None:
    out_dir = Path(__file__).resolve().parent
    plume = ParSSimDataset((GRID, GRID, GRID), timesteps=1, seed=5)
    turb = SpectralDataset((GRID, GRID, GRID), timesteps=1, seed=5)

    for name, dataset, iso in (
        ("plume", plume, 0.3),
        ("turbulence", turb, 0.4),
    ):
        metrics, profile, spread = render(dataset, iso, name)
        image = metrics.result.image
        path = out_dir / f"{name}.ppm"
        with open(path, "wb") as fh:
            fh.write(f"P6 {SIZE} {SIZE} 255\n".encode())
            fh.write(image.tobytes())
        buffers, nbytes = metrics.stream_totals("RE->Ra")
        occupancy = np.count_nonzero(image.any(axis=2)) / (SIZE * SIZE)
        print(
            f"{name:>10}: {profile.total_triangles(0):6d} triangles, "
            f"per-chunk spread (std/mean) {spread:4.2f}, "
            f"{buffers} RE->Ra buffers / {nbytes / 1e3:.0f} kB, "
            f"{occupancy:5.1%} of frame lit -> {path.name}"
        )
    print(
        "\nThe turbulence surface spreads triangles evenly over chunks "
        "(low spread), while\nthe plume concentrates them on a shell "
        "(high spread) — the skew the Demand-Driven\npolicy exists to "
        "absorb."
    )


if __name__ == "__main__":
    main()
